package nvkernel

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/testutil"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// echoServer is a minimal prefork server: listen, prefork W lanes,
// then every lane echoes messages on its accepted connection until the
// client closes. diverge != 0 makes a worker expose a variant-distinct
// UID to the monitor when a payload starts with 'D' — a corrupted lane
// in miniature.
type echoServer struct {
	workers int
	port    uint16
	diverge bool
	logEach bool // write a shared-log line per message (write-path load)
	lfd     int
	logfd   int
}

func (e *echoServer) Name() string { return "echo" }

func (e *echoServer) Run(ctx *sys.Context) error {
	lfd, err := ctx.Listen(e.port)
	if err != nil {
		return err
	}
	e.lfd = lfd
	if e.logEach {
		e.logfd, err = ctx.Open("/var/log/echo", vos.WriteOnly|vos.Create|vos.Append, 0644)
		if err != nil {
			return err
		}
	}
	if e.workers > 1 {
		if _, err := ctx.Prefork(e.workers); err != nil {
			return err
		}
	}
	return e.RunWorker(ctx, 0)
}

func (e *echoServer) RunWorker(ctx *sys.Context, worker int) error {
	buf, err := ctx.Mem.Alloc(1024)
	if err != nil {
		return err
	}
	for {
		cfd, err := ctx.Accept(e.lfd)
		if err != nil {
			return nil // listener closed: orderly shutdown
		}
		for {
			n, err := ctx.RecvMem(cfd, buf, 1024)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			if e.diverge {
				b, err := ctx.Mem.LoadByte(buf)
				if err != nil {
					return err
				}
				if b == 'D' {
					// The divergence a real corruption produces: each
					// variant presents a different concrete value.
					if _, err := ctx.UIDValue(word.Word(ctx.Variant)); err != nil {
						return err
					}
				}
			}
			if e.logEach {
				if err := ctx.WriteString(e.logfd, "served\n"); err != nil {
					return err
				}
			}
			if err := ctx.SendMem(cfd, buf, n); err != nil {
				return err
			}
		}
		if err := ctx.Close(cfd); err != nil {
			return err
		}
	}
}

// startEcho runs an echo group in the background and waits for its
// listener.
func startEcho(t *testing.T, w *vos.World, net *simnet.Network, n int, srv func() *echoServer) (port uint16, done chan *Result) {
	t.Helper()
	progs := make([]sys.Program, n)
	servers := make([]*echoServer, n)
	for i := range progs {
		servers[i] = srv()
		progs[i] = servers[i]
	}
	port = servers[0].port
	done = make(chan *Result, 1)
	go func() {
		res, err := Run(w, net, progs)
		if err != nil {
			t.Errorf("Run: %v", err)
		}
		done <- res
	}()
	testutil.Eventually(t, 5*time.Second, func() bool {
		c, err := net.Dial(port)
		if err != nil {
			return false
		}
		_ = c.Close()
		return true
	}, "echo server never listened")
	return port, done
}

// echoOnce sends payload and expects it echoed back on an open conn.
func echoOnce(t *testing.T, conn *simnet.Conn, payload string) {
	t.Helper()
	if err := conn.Send([]byte(payload)); err != nil {
		t.Fatalf("send %q: %v", payload, err)
	}
	reply, err := conn.Recv()
	if err != nil || string(reply) != payload {
		t.Fatalf("echo of %q = %q, %v", payload, reply, err)
	}
}

func TestPreforkWorkersServeConcurrently(t *testing.T) {
	// Three lanes, two variants each. Proof of intra-group concurrency:
	// two connections are parked mid-stream inside their lanes' recv
	// while a third connection is served start to finish — a serial
	// group would sit in the first connection's recv forever.
	w := newWorld(t)
	net := simnet.New(0)
	port, done := startEcho(t, w, net, 2, func() *echoServer {
		return &echoServer{workers: 3, port: 9100}
	})

	a, err := net.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	echoOnce(t, a, "held-a") // lane now parked in recv on a
	b, err := net.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	echoOnce(t, b, "held-b") // second lane parked in recv on b

	c, err := net.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		echoOnce(t, c, "third-lane") // full exchanges on the free lane
	}
	_ = c.Close()

	// The held lanes are still live.
	echoOnce(t, a, "still-a")
	echoOnce(t, b, "still-b")
	_ = a.Close()
	_ = b.Close()

	_ = net.ShutdownPort(port)
	res := <-done
	if !res.Clean {
		t.Fatalf("not clean: %+v", res.Alarm)
	}
	if res.Workers != 3 {
		t.Errorf("workers = %d, want 3", res.Workers)
	}
}

func TestWorkerLaneAlarmKillsWholeGroup(t *testing.T) {
	// The group-wide kill contract under -race: one lane alarms
	// mid-flight while the two sibling lanes are parked in recv on open
	// connections. The whole group must die, the alarm must record the
	// offending lane, and no kernel goroutine may leak.
	before := runtime.NumGoroutine()

	w := newWorld(t)
	net := simnet.New(0)
	port, done := startEcho(t, w, net, 2, func() *echoServer {
		return &echoServer{workers: 3, port: 9101, diverge: true}
	})

	a, err := net.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	echoOnce(t, a, "held-a")
	b, err := net.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	echoOnce(t, b, "held-b")

	// The free lane gets the poisoned payload: its UIDValue rendezvous
	// sees variant-distinct values and alarms.
	c, err := net.Dial(port)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("DIVERGE")); err != nil {
		t.Fatal(err)
	}
	if reply, err := c.Recv(); err == nil && reply != nil {
		t.Fatalf("poisoned request was served: %q", reply)
	}

	res := <-done
	if res.Alarm == nil || res.Alarm.Reason != ReasonUIDDivergence {
		t.Fatalf("alarm = %+v, want uid-divergence", res.Alarm)
	}
	if res.Alarm.Syscall != "uid_value" {
		t.Errorf("alarm at %q, want uid_value", res.Alarm.Syscall)
	}
	if res.Alarm.Worker < 0 || res.Alarm.Worker > 2 {
		t.Errorf("alarm worker = %d, want a lane in [0,3)", res.Alarm.Worker)
	}
	if res.Clean {
		t.Error("killed group reported clean")
	}

	// The sibling lanes' connections observe the kill: dropped with no
	// response.
	for name, conn := range map[string]*simnet.Conn{"a": a, "b": b} {
		if reply, err := conn.Recv(); err == nil && reply != nil {
			t.Errorf("conn %s got data after group kill: %q", name, reply)
		}
		_ = conn.Close()
	}
	_ = c.Close()

	// Every lane monitor, variant goroutine and drain helper must be
	// gone (the variants were all blocked in syscalls, so the drain
	// unwinds them promptly — nothing here spins).
	testutil.CheckNoGoroutineLeak(t, before, 2)
}

func TestScoreAddSharedCounter(t *testing.T) {
	// The scoreboard is performed once per rendezvous with one total
	// replicated to all variants: deterministic cumulative values, and
	// negative deltas work (two's complement).
	w := newWorld(t)
	res := mustRun(t, w, same(2, "score", func(ctx *sys.Context) error {
		for k := 1; k <= 5; k++ {
			v, err := ctx.ScoreAdd(1)
			if err != nil {
				return err
			}
			if int(v) != k {
				return ctx.Exit(word.Word(10 + k))
			}
		}
		v, err := ctx.ScoreAdd(word.Word(0xFFFFFFFF)) // -1
		if err != nil {
			return err
		}
		if v != 4 {
			return ctx.Exit(99)
		}
		return ctx.Exit(0)
	}))
	if !res.Clean || res.Status != 0 {
		t.Fatalf("score: clean=%v status=%d alarm=%v", res.Clean, res.Status, res.Alarm)
	}
}

func TestPreforkValidation(t *testing.T) {
	t.Run("plain-program", func(t *testing.T) {
		// A program without RunWorker must be refused, not run serially
		// while claiming to prefork.
		w := newWorld(t)
		res := mustRun(t, w, same(2, "plain", func(ctx *sys.Context) error {
			if _, err := ctx.Prefork(2); err == nil {
				return ctx.Exit(1)
			}
			return ctx.Exit(0)
		}))
		if !res.Clean || res.Status != 0 {
			t.Fatalf("status=%d alarm=%v", res.Status, res.Alarm)
		}
	})

	t.Run("twice-and-from-worker", func(t *testing.T) {
		progs := make([]sys.Program, 2)
		for i := range progs {
			progs[i] = sys.WorkerProgramFunc{
				ProgramFunc: sys.ProgramFunc{ProgName: "fork", Fn: func(ctx *sys.Context) error {
					if _, err := ctx.Prefork(0); err == nil {
						return ctx.Exit(1) // w < 1 must be refused
					}
					if _, err := ctx.Prefork(2); err != nil {
						return err
					}
					if _, err := ctx.Prefork(2); err == nil {
						return ctx.Exit(2) // second prefork must be refused
					}
					return ctx.Exit(0)
				}},
				WorkerFn: func(ctx *sys.Context, worker int) error {
					if worker != 1 || ctx.Worker != 1 {
						return errors.New("wrong worker index")
					}
					if _, err := ctx.Prefork(2); err == nil {
						return errors.New("prefork accepted from a worker lane")
					}
					return nil
				},
			}
		}
		res := mustRun(t, newWorld(t), progs)
		if !res.Clean || res.Status != 0 {
			t.Fatalf("clean=%v status=%d alarm=%v", res.Clean, res.Status, res.Alarm)
		}
		if res.Workers != 2 {
			t.Errorf("workers = %d, want 2", res.Workers)
		}
	})
}
