package nvkernel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/testutil"
)

// TestStragglerDrainGoroutinesExit is the regression test for the
// post-alarm drain leak: when the grace period expires with a variant
// still spinning (no syscalls, so unpreemptable), Run must return with
// the drain goroutines and the all-done waiter shut down. Before the
// stop channel existed they blocked forever on the spinner's done
// channel — one leaked goroutine set per straggler run, for the life
// of the process.
func TestStragglerDrainGoroutinesExit(t *testing.T) {
	before := runtime.NumGoroutine()
	var spin atomic.Bool // released at the end so the variant itself can exit

	const runs = 5
	for r := 0; r < runs; r++ {
		w := newWorld(t)
		progs := []sys.Program{
			prog("exits", func(ctx *sys.Context) error {
				return ctx.Exit(0)
			}),
			prog("spins", func(ctx *sys.Context) error {
				for !spin.Load() {
					runtime.Gosched()
				}
				// Returning an error (not Exit) lets the goroutine
				// unwind without a syscall — after Run returns, nothing
				// answers the rendezvous channel anymore.
				return errors.New("spinner released")
			}),
		}
		res, err := Run(w, simnet.New(0), progs, WithTimeout(30*time.Millisecond))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Alarm == nil || res.Alarm.Reason != ReasonTimeout {
			t.Fatalf("expected timeout alarm, got %+v", res.Alarm)
		}
		if res.VariantErrs[1] == nil {
			t.Fatalf("straggler not reported: %v", res.VariantErrs)
		}
	}

	// Only the spinning variant goroutines may outlive their runs
	// (goroutines are not killable); every drain goroutine and waiter
	// must be gone. The slack of runs covers the spinners themselves.
	if got := testutil.WaitGoroutines(before + runs + 2); got > before+runs+2 {
		t.Errorf("goroutines after %d straggler runs = %d, want <= %d (drain leak)",
			runs, got, before+runs+2)
	}

	// Release the spinners; everything should drain back to baseline.
	spin.Store(true)
	testutil.CheckNoGoroutineLeak(t, before, 2)
}
