package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// sumProgram computes 1+2+...+10 and outputs the sum (55).
const sumProgram = `
# r1 = accumulator, r2 = i, r3 = constant 1, r4 = limit scratch
    movi r1, 0
    movi r2, 10
    movi r3, 1
    jz   r2, 7      # while i != 0
    add  r1, r2
    sub  r2, r3
    jmp  3
    out  r1
    halt
`

func assemble(t *testing.T, src string) []word.Word {
	t.Helper()
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestAssembleAndRun(t *testing.T) {
	code := assemble(t, sumProgram)
	vm := NewVM(code, reexpress.TagBit{Tag: false})
	if err := vm.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(vm.Output) != 1 || vm.Output[0] != 55 {
		t.Errorf("output = %v, want [55]", vm.Output)
	}
}

func TestTaggedVariantsProduceIdenticalOutput(t *testing.T) {
	// Normal equivalence for instruction tagging: both variants run
	// the same canonical program under different tags.
	code := assemble(t, sumProgram)
	outs, err := RunPair(code, reexpress.InstructionTagging().Pair, nil, 0, 1000)
	if err != nil {
		t.Fatalf("benign divergence: %v", err)
	}
	if outs[0][0] != 55 || outs[1][0] != 55 {
		t.Errorf("outputs = %v", outs)
	}
}

func TestCodeInjectionDetected(t *testing.T) {
	// The attacker injects raw (tag-0-shaped) code that outputs a
	// forged value. Variant 0 would execute it; variant 1 faults at
	// fetch — detection, exactly the Table 1 argument.
	code := assemble(t, sumProgram)
	payload := assemble(t, "movi r1, 1337\nout r1\nhalt")
	_, err := RunPair(code, reexpress.InstructionTagging().Pair, payload, 3, 1000)
	if err == nil {
		t.Fatal("injected code ran in both variants undetected")
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Errorf("err = %v", err)
	}
}

func TestInjectionSucceedsOnSingleUntaggedVariant(t *testing.T) {
	// Against a single variant with the matching tag, the same payload
	// succeeds — diversity, not secrecy, provides the protection.
	code := assemble(t, sumProgram)
	img, err := TagImage(code, reexpress.TagBit{Tag: false})
	if err != nil {
		t.Fatal(err)
	}
	vm := NewVM(img, reexpress.TagBit{Tag: false})
	payload := assemble(t, "movi r1, 1337\nout r1\nhalt")
	if err := vm.Inject(3, payload); err != nil {
		t.Fatal(err)
	}
	if err := vm.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(vm.Output) != 1 || vm.Output[0] != 1337 {
		t.Errorf("output = %v, want [1337] (exploit works single-variant)", vm.Output)
	}
}

func TestTagFaultError(t *testing.T) {
	code := assemble(t, "halt")
	img, err := TagImage(code, reexpress.TagBit{Tag: true})
	if err != nil {
		t.Fatal(err)
	}
	// Run variant-1 image under variant-0 inverse: tag mismatch.
	vm := NewVM(img, reexpress.TagBit{Tag: false})
	runErr := vm.Run(10)
	var fault *TagFaultError
	if !errors.As(runErr, &fault) {
		t.Fatalf("err = %v, want TagFaultError", runErr)
	}
	if fault.PC != 0 {
		t.Errorf("fault pc = %d, want 0", fault.PC)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: OpNop},
		{Op: OpMovI, A: 3, Imm: 0xBEEF},
		{Op: OpAdd, A: 1, B: 7},
		{Op: OpLoad, A: 2, B: 4, Imm: 100},
		{Op: OpJmp, Imm: 12},
		{Op: OpHalt},
	}
	for _, in := range insts {
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		if w&word.HighBit != 0 {
			t.Errorf("Encode(%v) used the tag bit", in)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%s): %v", w, err)
		}
		if out != in {
			t.Errorf("round trip %v -> %v", in, out)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(word.HighBit); err == nil {
		t.Error("tagged word decoded")
	}
	if _, err := Decode(0x7F000000); err == nil {
		t.Error("illegal opcode decoded")
	}
	// Register out of range: op=movi a=9.
	bad := word.Word(OpMovI)<<24 | 9<<20
	if _, err := Decode(bad); err == nil {
		t.Error("register 9 decoded")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := (Inst{Op: 0xFF}).Encode(); err == nil {
		t.Error("8-bit opcode encoded")
	}
	if _, err := (Inst{Op: OpMov, A: 8}).Encode(); err == nil {
		t.Error("register 8 encoded")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"movi r9, 1",
		"movi r1",
		"add r1, 5",
		"movi r1, 99999999",
		"jmp r1",
		"load r1, r2",
		"halt r1",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	code, err := Assemble("# full comment line\n\n  halt  # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 1 {
		t.Errorf("code = %v, want 1 instruction", code)
	}
}

func TestALUOperations(t *testing.T) {
	src := `
    movi r1, 12
    movi r2, 10
    and  r1, r2    # 8
    movi r3, 3
    or   r1, r3    # 11
    xor  r1, r2    # 1
    shl  r1, 4     # 16
    shr  r1, 2     # 4
    mov  r4, r1
    out  r4
    halt
`
	vm := NewVM(assemble(t, src), reexpress.TagBit{Tag: false})
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(vm.Output) != 1 || vm.Output[0] != 4 {
		t.Errorf("output = %v, want [4]", vm.Output)
	}
}

func TestLoadStore(t *testing.T) {
	src := `
    movi r1, 77
    movi r2, 5
    store r1, r2, 10   # mem[15] = 77
    load  r3, r2, 10   # r3 = mem[15]
    out   r3
    halt
`
	vm := NewVM(assemble(t, src), reexpress.TagBit{Tag: false})
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if vm.Output[0] != 77 {
		t.Errorf("output = %v, want [77]", vm.Output)
	}
}

func TestMemoryBounds(t *testing.T) {
	src := "movi r2, 300\nload r1, r2, 0\nhalt"
	vm := NewVM(assemble(t, src), reexpress.TagBit{Tag: false})
	if err := vm.Run(100); err == nil {
		t.Error("out-of-bounds load succeeded")
	}
	src2 := "movi r2, 300\nstore r1, r2, 0\nhalt"
	vm2 := NewVM(assemble(t, src2), reexpress.TagBit{Tag: false})
	if err := vm2.Run(100); err == nil {
		t.Error("out-of-bounds store succeeded")
	}
}

func TestStepBudget(t *testing.T) {
	vm := NewVM(assemble(t, "jmp 0"), reexpress.TagBit{Tag: false})
	if err := vm.Run(50); err == nil {
		t.Error("infinite loop terminated")
	}
}

func TestPCOutOfImage(t *testing.T) {
	vm := NewVM(assemble(t, "jmp 100"), reexpress.TagBit{Tag: false})
	if err := vm.Run(50); err == nil {
		t.Error("pc outside image did not fault")
	}
}

func TestInjectBounds(t *testing.T) {
	vm := NewVM(assemble(t, "halt"), reexpress.TagBit{Tag: false})
	if err := vm.Inject(5, []word.Word{0}); err == nil {
		t.Error("out-of-range inject succeeded")
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	ops := []Op{OpNop, OpMovI, OpMov, OpAdd, OpSub, OpXor, OpAnd, OpOr, OpShl, OpShr, OpLoad, OpStore, OpJmp, OpJz, OpJnz, OpOut, OpHalt}
	f := func(opIdx, a, b uint8, imm uint16) bool {
		in := Inst{Op: ops[int(opIdx)%len(ops)], A: a % NumRegs, B: b % NumRegs, Imm: imm}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		out, err := Decode(w)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpHalt.String() != "halt" || Op(99).String() != "op(99)" {
		t.Error("op names wrong")
	}
}

func TestRunSpecNVariantTagging(t *testing.T) {
	code, err := Assemble(`
    movi r1, 7
    out  r1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := reexpress.NewSpec(3, reexpress.InstructionTagLayer(3))
	if err != nil {
		t.Fatal(err)
	}
	// Benign: all three tagged variants produce identical output.
	outs, err := RunSpec(code, spec, nil, 0, 100)
	if err != nil {
		t.Fatalf("benign 3-variant run alarmed: %v", err)
	}
	if len(outs) != 3 {
		t.Fatalf("outputs = %d", len(outs))
	}
	for i, o := range outs {
		if len(o) != 1 || o[0] != 7 {
			t.Errorf("variant %d output = %v", i, o)
		}
	}
	// Injected untagged code is valid in at most one variant's tag
	// space: the group must diverge.
	inject, err := Assemble(`
    movi r1, 9
    out  r1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSpec(code, spec, inject, 0, 100); err == nil {
		t.Fatal("injected untagged code not detected at N=3")
	}
	// A spec without the layer is refused.
	uidOnly := reexpress.Generate(5, 3)
	if _, err := RunSpec(code, uidOnly, nil, 0, 100); err == nil {
		t.Fatal("spec without an instruction-tag layer accepted")
	}
}
