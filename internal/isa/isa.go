// Package isa implements the instruction-set substrate for the
// instruction-set tagging variation (Table 1, [16]): a small 32-bit
// register machine with an assembler, an encoder that applies a
// per-variant tag to every instruction word, and an interpreting VM
// whose fetch stage checks and strips the tag before execution.
//
// Canonical instructions occupy 31 bits; R_i places variant i's tag in
// the high bit. Injected code — which arrives as the same concrete
// bytes in every variant — can carry at most one variant's tag, so at
// least one variant faults at fetch, and the monitor reports the
// divergence. This reproduces the code-injection defence the paper
// cites from the original N-variant work, providing the third Table 1
// row as a running system rather than a formula.
package isa

import (
	"fmt"
	"strconv"
	"strings"

	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. The encoding packs op (7 bits, keeping the tag bit free),
// two register fields and a 16-bit immediate.
const (
	OpNop Op = iota + 1
	// OpMovI: r[a] = imm.
	OpMovI
	// OpMov: r[a] = r[b].
	OpMov
	// OpAdd: r[a] = r[a] + r[b].
	OpAdd
	// OpSub: r[a] = r[a] - r[b].
	OpSub
	// OpXor: r[a] = r[a] ^ r[b].
	OpXor
	// OpAnd: r[a] = r[a] & r[b].
	OpAnd
	// OpOr: r[a] = r[a] | r[b].
	OpOr
	// OpShl: r[a] = r[a] << imm.
	OpShl
	// OpShr: r[a] = r[a] >> imm (logical).
	OpShr
	// OpLoad: r[a] = mem[r[b] + imm].
	OpLoad
	// OpStore: mem[r[b] + imm] = r[a].
	OpStore
	// OpJmp: pc = imm.
	OpJmp
	// OpJz: if r[a] == 0 { pc = imm }.
	OpJz
	// OpJnz: if r[a] != 0 { pc = imm }.
	OpJnz
	// OpOut: append r[a] to the output stream.
	OpOut
	// OpHalt stops execution.
	OpHalt
)

var opNames = map[Op]string{
	OpNop: "nop", OpMovI: "movi", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpXor: "xor", OpAnd: "and", OpOr: "or", OpShl: "shl", OpShr: "shr",
	OpLoad: "load", OpStore: "store", OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpOut: "out", OpHalt: "halt",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String names the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the register-file size.
const NumRegs = 8

// MemWords is the data-memory size in words.
const MemWords = 256

// Inst is a decoded instruction.
type Inst struct {
	// Op is the operation.
	Op Op
	// A and B are register indices.
	A, B uint8
	// Imm is the 16-bit immediate.
	Imm uint16
}

// Encode packs the instruction into a canonical (untagged, 31-bit)
// word: [tag:1][op:7][a:4][b:4][imm:16].
func (i Inst) Encode() (word.Word, error) {
	if i.Op > 0x7F {
		return 0, fmt.Errorf("isa: opcode %d exceeds 7 bits", i.Op)
	}
	if i.A >= NumRegs || i.B >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", i)
	}
	w := word.Word(i.Op)<<24 | word.Word(i.A&0xF)<<20 | word.Word(i.B&0xF)<<16 | word.Word(i.Imm)
	return w, nil
}

// Decode unpacks a canonical instruction word.
func Decode(w word.Word) (Inst, error) {
	if w&word.HighBit != 0 {
		return Inst{}, fmt.Errorf("isa: word %s is not canonical (tag bit set)", w)
	}
	inst := Inst{
		Op:  Op(w >> 24),
		A:   uint8(w >> 20 & 0xF),
		B:   uint8(w >> 16 & 0xF),
		Imm: uint16(w),
	}
	if _, known := opNames[inst.Op]; !known {
		return Inst{}, fmt.Errorf("isa: illegal opcode %d in %s", inst.Op, w)
	}
	if inst.A >= NumRegs || inst.B >= NumRegs {
		return Inst{}, fmt.Errorf("isa: register out of range in %s", w)
	}
	return inst, nil
}

// Assemble translates assembly text (one instruction per line,
// "#"-comments) into canonical instruction words.
//
//	movi r1, 40
//	add  r1, r2
//	jz   r1, 7
//	out  r1
//	halt
func Assemble(src string) ([]word.Word, error) {
	var out []word.Word
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		inst, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		w, err := inst.Encode()
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		out = append(out, w)
	}
	return out, nil
}

func parseInst(line string) (Inst, error) {
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	op, ok := opByName[fields[0]]
	if !ok {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	args := fields[1:]
	reg := func(s string) (uint8, error) {
		if !strings.HasPrefix(s, "r") {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (uint16, error) {
		n, err := strconv.ParseUint(s, 0, 16)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return uint16(n), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch op {
	case OpNop, OpHalt:
		if err := need(0); err != nil {
			return Inst{}, err
		}
		return Inst{Op: op}, nil
	case OpMovI, OpShl, OpShr, OpJz, OpJnz:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		a, err := reg(args[0])
		if err != nil {
			return Inst{}, err
		}
		im, err := imm(args[1])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, A: a, Imm: im}, nil
	case OpMov, OpAdd, OpSub, OpXor, OpAnd, OpOr:
		if err := need(2); err != nil {
			return Inst{}, err
		}
		a, err := reg(args[0])
		if err != nil {
			return Inst{}, err
		}
		b, err := reg(args[1])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, A: a, B: b}, nil
	case OpLoad, OpStore:
		if err := need(3); err != nil {
			return Inst{}, err
		}
		a, err := reg(args[0])
		if err != nil {
			return Inst{}, err
		}
		b, err := reg(args[1])
		if err != nil {
			return Inst{}, err
		}
		im, err := imm(args[2])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, A: a, B: b, Imm: im}, nil
	case OpJmp:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		im, err := imm(args[0])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Imm: im}, nil
	case OpOut:
		if err := need(1); err != nil {
			return Inst{}, err
		}
		a, err := reg(args[0])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, A: a}, nil
	default:
		return Inst{}, fmt.Errorf("unhandled op %v", op)
	}
}

// TagImage applies the variant's reexpression function to every
// instruction of a canonical program — the trusted build step that
// produces variant i's executable image.
func TagImage(canonical []word.Word, f reexpress.Func) ([]word.Word, error) {
	out := make([]word.Word, len(canonical))
	for i, w := range canonical {
		tagged, err := f.Apply(w)
		if err != nil {
			return nil, fmt.Errorf("isa: tag instruction %d: %w", i, err)
		}
		out[i] = tagged
	}
	return out, nil
}

// TagFaultError is the VM's alarm state: a fetched instruction carried
// the wrong tag (injected code) or decoded illegally.
type TagFaultError struct {
	// PC is the faulting instruction index.
	PC int
	// Cause is the underlying decode/tag failure.
	Cause error
}

// Error implements the error interface.
func (e *TagFaultError) Error() string {
	return fmt.Sprintf("isa: illegal instruction at pc=%d: %v", e.PC, e.Cause)
}

// Unwrap exposes the cause.
func (e *TagFaultError) Unwrap() error { return e.Cause }

// VM executes a tagged image. Each variant of an N-variant deployment
// runs its own VM over its own tagged image.
type VM struct {
	// Regs is the register file.
	Regs [NumRegs]word.Word
	// Mem is the data memory.
	Mem [MemWords]word.Word
	// Output collects OpOut values.
	Output []word.Word

	image []word.Word
	f     reexpress.Func
	pc    int
	steps int
}

// NewVM builds a VM for a tagged image; f is the variant's
// reexpression function, whose inverse runs at fetch (the R⁻¹ before
// the target interpreter in Figure 2).
func NewVM(image []word.Word, f reexpress.Func) *VM {
	img := make([]word.Word, len(image))
	copy(img, image)
	return &VM{image: img, f: f}
}

// Inject overwrites instructions starting at pc with raw concrete
// words — the attacker's code-injection primitive. The same raw words
// go to every variant (same input), so they can carry at most one
// valid tag.
func (v *VM) Inject(pc int, code []word.Word) error {
	if pc < 0 || pc+len(code) > len(v.image) {
		return fmt.Errorf("isa: inject at %d..%d outside image of %d words", pc, pc+len(code), len(v.image))
	}
	copy(v.image[pc:], code)
	return nil
}

// Run executes until halt, the step budget, or a fault.
func (v *VM) Run(maxSteps int) error {
	for v.steps = 0; v.steps < maxSteps; v.steps++ {
		if v.pc < 0 || v.pc >= len(v.image) {
			return fmt.Errorf("isa: pc %d outside image", v.pc)
		}
		// Fetch: invert the tag (check + strip), then decode.
		canonical, err := v.f.Invert(v.image[v.pc])
		if err != nil {
			return &TagFaultError{PC: v.pc, Cause: err}
		}
		inst, err := Decode(canonical)
		if err != nil {
			return &TagFaultError{PC: v.pc, Cause: err}
		}
		next := v.pc + 1
		switch inst.Op {
		case OpNop:
		case OpMovI:
			v.Regs[inst.A] = word.Word(inst.Imm)
		case OpMov:
			v.Regs[inst.A] = v.Regs[inst.B]
		case OpAdd:
			v.Regs[inst.A] += v.Regs[inst.B]
		case OpSub:
			v.Regs[inst.A] -= v.Regs[inst.B]
		case OpXor:
			v.Regs[inst.A] ^= v.Regs[inst.B]
		case OpAnd:
			v.Regs[inst.A] &= v.Regs[inst.B]
		case OpOr:
			v.Regs[inst.A] |= v.Regs[inst.B]
		case OpShl:
			v.Regs[inst.A] <<= uint(inst.Imm & 31)
		case OpShr:
			v.Regs[inst.A] >>= uint(inst.Imm & 31)
		case OpLoad:
			addr := int(v.Regs[inst.B]) + int(inst.Imm)
			if addr < 0 || addr >= MemWords {
				return fmt.Errorf("isa: load from %d outside memory", addr)
			}
			v.Regs[inst.A] = v.Mem[addr]
		case OpStore:
			addr := int(v.Regs[inst.B]) + int(inst.Imm)
			if addr < 0 || addr >= MemWords {
				return fmt.Errorf("isa: store to %d outside memory", addr)
			}
			v.Mem[addr] = v.Regs[inst.A]
		case OpJmp:
			next = int(inst.Imm)
		case OpJz:
			if v.Regs[inst.A] == 0 {
				next = int(inst.Imm)
			}
		case OpJnz:
			if v.Regs[inst.A] != 0 {
				next = int(inst.Imm)
			}
		case OpOut:
			v.Output = append(v.Output, v.Regs[inst.A])
		case OpHalt:
			return nil
		}
		v.pc = next
	}
	return fmt.Errorf("isa: step budget (%d) exhausted", maxSteps)
}

// RunN executes one tagged variant per reexpression function on the
// same injected input and reports divergence: it returns the
// per-variant outputs and a non-nil alarm error if any variant faulted
// or any two outputs differ — the monitor's view of Table 1's
// instruction-set tagging row, generalized to N variants (a
// DiversitySpec's instruction-tag layer deploys here, not under the
// syscall monitor).
func RunN(canonical []word.Word, funcs []reexpress.Func, inject []word.Word, injectAt int, maxSteps int) ([][]word.Word, error) {
	n := len(funcs)
	outs := make([][]word.Word, n)
	vms := make([]*VM, n)
	for i, f := range funcs {
		img, err := TagImage(canonical, f)
		if err != nil {
			return outs, err
		}
		vm := NewVM(img, f)
		if len(inject) > 0 {
			if err := vm.Inject(injectAt, inject); err != nil {
				return outs, err
			}
		}
		vms[i] = vm
	}
	errs := make([]error, n)
	faulted := false
	for i, vm := range vms {
		errs[i] = vm.Run(maxSteps)
		outs[i] = vm.Output
		if errs[i] != nil {
			faulted = true
		}
	}
	if faulted {
		return outs, fmt.Errorf("isa: variant divergence: %v", errs)
	}
	for i := 1; i < n; i++ {
		if len(outs[i]) != len(outs[0]) {
			return outs, fmt.Errorf("isa: output length divergence: variant %d emitted %d words, variant 0 %d", i, len(outs[i]), len(outs[0]))
		}
		for j := range outs[0] {
			if outs[i][j] != outs[0][j] {
				return outs, fmt.Errorf("isa: output divergence at %d: variant %d %s vs variant 0 %s", j, i, outs[i][j], outs[0][j])
			}
		}
	}
	return outs, nil
}

// RunSpec deploys a DiversitySpec's instruction-tag layer: one tagged
// variant per effective (stack-composed) tag function.
func RunSpec(canonical []word.Word, spec *reexpress.Spec, inject []word.Word, injectAt int, maxSteps int) ([][]word.Word, error) {
	funcs := spec.FuncsFor(reexpress.LayerInstructionTags)
	if funcs == nil {
		return nil, fmt.Errorf("isa: spec has no instruction-tag layer: %s", spec)
	}
	return RunN(canonical, funcs, inject, injectAt, maxSteps)
}

// RunPair is RunN for the two-variant deployments of the paper.
func RunPair(canonical []word.Word, pair reexpress.Pair, inject []word.Word, injectAt int, maxSteps int) ([2][]word.Word, error) {
	var outs [2][]word.Word
	res, err := RunN(canonical, pair.Funcs(), inject, injectAt, maxSteps)
	for i := 0; i < len(res) && i < 2; i++ {
		outs[i] = res[i]
	}
	return outs, err
}
