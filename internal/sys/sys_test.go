package sys

import (
	"errors"
	"testing"

	"nvariant/internal/vmem"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

func TestSpecTable(t *testing.T) {
	// Every declared syscall must have a spec and a name.
	nums := []Num{
		Exit, Open, CloseFD, Read, Write, Stat,
		Getuid, Geteuid, Getgid, Getegid,
		Setuid, Seteuid, Setreuid, Setgid, Setegid,
		Listen, Accept, Recv, Send, Time,
		UIDValue, CondChk, CCEq, CCNeq, CCLt, CCLeq, CCGt, CCGeq,
	}
	for _, n := range nums {
		spec, ok := SpecFor(n)
		if !ok {
			t.Errorf("no spec for syscall %d", n)
			continue
		}
		if spec.Name == "" || spec.Class == 0 {
			t.Errorf("incomplete spec for %v: %+v", n, spec)
		}
		if n.String() != spec.Name {
			t.Errorf("String() = %q, spec name %q", n.String(), spec.Name)
		}
	}
	if Num(9999).String() != "unknown" {
		t.Error("unknown syscall name")
	}
	if _, ok := SpecFor(Num(9999)); ok {
		t.Error("spec for unknown syscall")
	}
}

func TestDetectionCallsMatchTable2(t *testing.T) {
	calls := DetectionCalls()
	want := []string{"uid_value", "cond_chk", "cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq"}
	if len(calls) != len(want) {
		t.Fatalf("detection calls = %d, want %d", len(calls), len(want))
	}
	for i, n := range calls {
		if n.String() != want[i] {
			t.Errorf("call %d = %q, want %q", i, n.String(), want[i])
		}
		spec, _ := SpecFor(n)
		if spec.Class != ClassDetect {
			t.Errorf("%s class = %v, want detect", n, spec.Class)
		}
	}
}

func TestUIDArgKinds(t *testing.T) {
	// The UID-bearing syscalls must mark their UID argument positions
	// so the kernel applies R⁻¹ (the target interface of §3.5).
	uidCalls := map[Num]int{
		Setuid: 1, Seteuid: 1, Setreuid: 2, Setgid: 1, Setegid: 1,
		UIDValue: 1, CCEq: 2, CCNeq: 2, CCLt: 2, CCLeq: 2, CCGt: 2, CCGeq: 2,
	}
	for n, count := range uidCalls {
		spec, _ := SpecFor(n)
		got := 0
		for _, k := range spec.Args {
			if k == ArgUID {
				got++
			}
		}
		if got != count {
			t.Errorf("%s has %d UID args, want %d", n, got, count)
		}
	}
}

// fakeInvoker records calls and returns scripted replies. Like the
// real monitor, an invoker owns a call's Args/Data only until it
// replies — the wrappers reuse the context's backing buffers — so the
// recorder snapshots them before returning.
type fakeInvoker struct {
	calls   []Call
	replies []Reply
}

func (f *fakeInvoker) invoke(c Call) Reply {
	rec := c
	rec.Args = append([]word.Word(nil), c.Args...)
	rec.Data = append([]byte(nil), c.Data...)
	f.calls = append(f.calls, rec)
	if len(f.replies) == 0 {
		return Reply{}
	}
	r := f.replies[0]
	f.replies = f.replies[1:]
	return r
}

func newTestContext(f *fakeInvoker) *Context {
	return NewContext(0, 1, vmem.New(vmem.PartitionNone), f.invoke)
}

func TestContextSyscallErrors(t *testing.T) {
	f := &fakeInvoker{replies: []Reply{
		{Killed: true},
		{Errno: vos.ErrAccess},
		{Val: 42},
	}}
	ctx := newTestContext(f)

	_, err := ctx.Getuid()
	if !errors.Is(err, ErrKilled) {
		t.Errorf("killed reply error = %v, want ErrKilled", err)
	}
	_, err = ctx.Getuid()
	if e, ok := vos.AsErrno(err); !ok || e != vos.ErrAccess {
		t.Errorf("errno reply error = %v, want EACCES", err)
	}
	v, err := ctx.Getuid()
	if err != nil || v != 42 {
		t.Errorf("ok reply = (%v, %v), want (42, nil)", v, err)
	}
}

func TestContextWrappersEncodeCalls(t *testing.T) {
	f := &fakeInvoker{}
	ctx := newTestContext(f)

	if _, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0644); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Setuid(30); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Setreuid(vos.NoChange, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CCLeq(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.CondChk(true); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Exit(0); err != nil {
		t.Fatal(err)
	}

	wantNums := []Num{Open, Setuid, Setreuid, CCLeq, CondChk, Exit}
	if len(f.calls) != len(wantNums) {
		t.Fatalf("calls = %d, want %d", len(f.calls), len(wantNums))
	}
	for i, n := range wantNums {
		if f.calls[i].Num != n {
			t.Errorf("call %d = %v, want %v", i, f.calls[i].Num, n)
		}
	}
	if string(f.calls[0].Data) != "/etc/passwd" {
		t.Errorf("open path = %q", f.calls[0].Data)
	}
	if f.calls[1].Args[0] != 30 {
		t.Errorf("setuid arg = %v", f.calls[1].Args)
	}
	if f.calls[2].Args[0] != vos.NoChange || f.calls[2].Args[1] != 30 {
		t.Errorf("setreuid args = %v", f.calls[2].Args)
	}
	if f.calls[4].Args[0] != 1 {
		t.Errorf("cond_chk arg = %v", f.calls[4].Args)
	}
}

func TestContextExitIdempotent(t *testing.T) {
	f := &fakeInvoker{}
	ctx := newTestContext(f)
	if err := ctx.Exit(3); err != nil {
		t.Fatal(err)
	}
	if !ctx.Exited() {
		t.Error("Exited() = false after Exit")
	}
	if err := ctx.Exit(4); err != nil {
		t.Fatal(err)
	}
	if len(f.calls) != 1 {
		t.Errorf("Exit issued %d syscalls, want 1", len(f.calls))
	}
}

func TestContextMemoryHelpers(t *testing.T) {
	f := &fakeInvoker{replies: []Reply{{Val: 5}}}
	ctx := newTestContext(f)
	if err := ctx.WriteString(FDStdout, "hello"); err != nil {
		t.Fatal(err)
	}
	call := f.calls[0]
	if call.Num != Write || call.Args[0] != FDStdout || call.Args[2] != 5 {
		t.Errorf("write call = %+v", call)
	}
	// The payload must be readable from the context's memory at the
	// address passed to the kernel.
	b, err := ctx.Mem.ReadBytes(call.Args[1], 5)
	if err != nil || string(b) != "hello" {
		t.Errorf("scratch content = %q, %v", b, err)
	}
}

func TestProgramFunc(t *testing.T) {
	p := ProgramFunc{ProgName: "x", Fn: func(ctx *Context) error { return nil }}
	if p.Name() != "x" {
		t.Errorf("Name = %q", p.Name())
	}
	if err := p.Run(nil); err != nil {
		t.Errorf("Run = %v", err)
	}
}
