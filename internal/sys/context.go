package sys

import (
	"errors"
	"fmt"

	"nvariant/internal/vmem"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// ErrKilled is returned by syscall wrappers after the monitor has
// raised an alarm and terminated the variant group. Programs must
// propagate it so the variant unwinds promptly.
var ErrKilled = errors.New("sys: variant killed by monitor")

// ErrCrashed is returned by syscall wrappers after a chaos-injected
// variant crash. Unlike ErrKilled it is a variant fault: the monitor
// treats the unwinding variant as a crashed process and raises an
// alarm if its siblings are still healthy.
var ErrCrashed = errors.New("sys: variant crashed (injected fault)")

// Invoker executes one system call on behalf of a variant. The monitor
// kernel provides the implementation; programs never construct one.
type Invoker func(Call) Reply

// Program is the code executed identically (modulo data reexpression
// applied at build time) by every variant.
type Program interface {
	// Name identifies the program in alarm reports and logs.
	Name() string
	// Run executes the program against the syscall context. A non-nil
	// return that is not ErrKilled is treated by the monitor as a
	// variant fault (the analogue of a crash), which itself raises an
	// alarm if other variants are still healthy.
	Run(ctx *Context) error
}

// WorkerProgram is a Program that supports prefork worker lanes. After
// the primary lane calls Context.Prefork(w), the kernel runs RunWorker
// in w-1 fresh lanes — each an independent N-variant rendezvous over
// fresh per-lane address spaces — with worker being the lane index in
// [1, w). Lane 0 continues inline when Prefork returns, conventionally
// running the same loop body as worker 0. Like Run, a non-ErrKilled
// error return is a variant fault.
//
// A worker lane's memory starts empty (the simulation has no
// copy-on-write fork image): state the workers need from startup is
// carried on the program value itself, which the variant's lanes share
// — the analogue of inherited process memory, made race-free by the
// Prefork rendezvous ordering startup writes before worker reads.
type WorkerProgram interface {
	Program
	RunWorker(ctx *Context, worker int) error
}

// Context is the per-variant execution environment: the variant's
// simulated memory plus the syscall interface. It mirrors the libc
// layer of the paper's variants.
type Context struct {
	// Variant is this variant's index (0-based).
	Variant int
	// NumVariants is the group size (1 when running plain).
	NumVariants int
	// Worker is the index of the prefork worker lane this context
	// executes in (0 for the primary lane and for serial programs).
	Worker int
	// Mem is this variant's simulated address space.
	Mem *vmem.Space

	invoke  Invoker
	exited  bool
	crashed bool
	scratch vmem.Addr
	scrCap  uint32

	// argBuf backs Call.Args for the convenience wrappers so the
	// common syscall path performs zero heap allocations. Reuse is
	// safe because a variant is a single goroutine that blocks until
	// the monitor replies, and the monitor never reads a call's Args
	// after replying.
	argBuf [3]word.Word
	// dataBuf likewise backs Call.Data for path-carrying calls.
	dataBuf []byte
}

// NewContext builds a context. It is exported for the kernel and for
// tests; programs receive a ready Context.
func NewContext(variant, numVariants int, mem *vmem.Space, invoke Invoker) *Context {
	return &Context{Variant: variant, NumVariants: numVariants, Mem: mem, invoke: invoke}
}

// Exited reports whether the program has issued Exit.
func (c *Context) Exited() bool { return c.exited }

// Syscall issues a raw system call.
func (c *Context) Syscall(call Call) (word.Word, error) {
	if c.crashed {
		// A crashed variant stays dead: nothing it does reaches the
		// kernel anymore.
		return 0, fmt.Errorf("%s: %w", call.Num, ErrCrashed)
	}
	r := c.invoke(call)
	switch {
	case r.Crashed:
		c.crashed = true
		return r.Val, fmt.Errorf("%s: %w", call.Num, ErrCrashed)
	case r.Killed:
		return r.Val, fmt.Errorf("%s: %w", call.Num, ErrKilled)
	case r.Errno != nil:
		return r.Val, fmt.Errorf("%s: %w", call.Num, r.Errno)
	default:
		return r.Val, nil
	}
}

// sys0 … sys3 issue a syscall with 0–3 arguments backed by the
// context's reusable argument buffer — no per-call slice allocation.
func (c *Context) sys0(num Num) (word.Word, error) {
	return c.Syscall(Call{Num: num})
}

func (c *Context) sys1(num Num, a0 word.Word) (word.Word, error) {
	c.argBuf[0] = a0
	return c.Syscall(Call{Num: num, Args: c.argBuf[:1]})
}

func (c *Context) sys2(num Num, a0, a1 word.Word) (word.Word, error) {
	c.argBuf[0], c.argBuf[1] = a0, a1
	return c.Syscall(Call{Num: num, Args: c.argBuf[:2]})
}

func (c *Context) sys3(num Num, a0, a1, a2 word.Word) (word.Word, error) {
	c.argBuf[0], c.argBuf[1], c.argBuf[2] = a0, a1, a2
	return c.Syscall(Call{Num: num, Args: c.argBuf[:3]})
}

// pathData stages path into the context's reusable Data buffer.
func (c *Context) pathData(path string) []byte {
	c.dataBuf = append(c.dataBuf[:0], path...)
	return c.dataBuf
}

// scratchBuf returns a reusable scratch region of at least n bytes in
// variant memory, used by the string convenience wrappers.
func (c *Context) scratchBuf(n uint32) (vmem.Addr, error) {
	if n == 0 {
		n = 1
	}
	if c.scrCap < n {
		size := uint32(4096)
		for size < n {
			size *= 2
		}
		addr, err := c.Mem.Alloc(size)
		if err != nil {
			return 0, fmt.Errorf("scratch: %w", err)
		}
		c.scratch, c.scrCap = addr, size
	}
	return c.scratch, nil
}

// Exit terminates the variant group with the given status.
func (c *Context) Exit(status word.Word) error {
	if c.exited {
		return nil
	}
	_, err := c.sys1(Exit, status)
	c.exited = true
	return err
}

// Open opens path with the given flags, returning a file descriptor.
func (c *Context) Open(path string, flags vos.OpenFlag, perm vos.Mode) (int, error) {
	c.argBuf[0], c.argBuf[1] = word.Word(flags), word.Word(perm)
	v, err := c.Syscall(Call{Num: Open, Args: c.argBuf[:2], Data: c.pathData(path)})
	return int(v), err
}

// Close closes a file descriptor.
func (c *Context) Close(fd int) error {
	_, err := c.sys1(CloseFD, word.Word(fd))
	return err
}

// ReadMem reads up to n bytes from fd into variant memory at addr.
func (c *Context) ReadMem(fd int, addr vmem.Addr, n uint32) (uint32, error) {
	v, err := c.sys3(Read, word.Word(fd), addr, word.Word(n))
	return uint32(v), err
}

// WriteMem writes n bytes from variant memory at addr to fd.
func (c *Context) WriteMem(fd int, addr vmem.Addr, n uint32) (uint32, error) {
	v, err := c.sys3(Write, word.Word(fd), addr, word.Word(n))
	return uint32(v), err
}

// ReadAll reads fd to end of file and returns the contents as Go
// bytes (copied out of variant memory).
func (c *Context) ReadAll(fd int) ([]byte, error) {
	return c.ReadAllInto(fd, nil)
}

// ReadAllInto is ReadAll appending onto buf — pass a reused buf[:0] to
// read repeatedly without allocating (the httpd request loop does).
func (c *Context) ReadAllInto(fd int, buf []byte) ([]byte, error) {
	const chunk = 4096
	addr, err := c.scratchBuf(chunk)
	if err != nil {
		return nil, err
	}
	out := buf
	for {
		n, err := c.ReadMem(fd, addr, chunk)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		start := len(out)
		need := start + int(n)
		if cap(out) < need {
			grown := make([]byte, need, 2*need)
			copy(grown, out)
			out = grown
		} else {
			out = out[:need]
		}
		if err := c.Mem.ReadBytesInto(addr, out[start:]); err != nil {
			return nil, err
		}
	}
}

// WriteString writes s to fd via a scratch buffer in variant memory.
func (c *Context) WriteString(fd int, s string) error {
	addr, err := c.scratchBuf(uint32(len(s)))
	if err != nil {
		return err
	}
	if err := c.Mem.WriteString(addr, s); err != nil {
		return err
	}
	_, err = c.WriteMem(fd, addr, uint32(len(s)))
	return err
}

// Stat returns the size of the file at path. (File ownership is
// enforced by the kernel at open time; programs never need to read
// UIDs out of inodes, which keeps the UID target interface confined
// to the credential syscalls as in the paper.)
func (c *Context) Stat(path string) (uint32, error) {
	v, err := c.Syscall(Call{Num: Stat, Data: c.pathData(path)})
	return uint32(v), err
}

// Getuid returns the real UID in this variant's representation.
func (c *Context) Getuid() (vos.UID, error) {
	return c.sys0(Getuid)
}

// Geteuid returns the effective UID in this variant's representation.
func (c *Context) Geteuid() (vos.UID, error) {
	return c.sys0(Geteuid)
}

// Getgid returns the real GID in this variant's representation.
func (c *Context) Getgid() (vos.GID, error) {
	return c.sys0(Getgid)
}

// Getegid returns the effective GID in this variant's representation.
func (c *Context) Getegid() (vos.GID, error) {
	return c.sys0(Getegid)
}

// Setuid sets the process UID; u is in this variant's representation.
func (c *Context) Setuid(u vos.UID) error {
	_, err := c.sys1(Setuid, u)
	return err
}

// Seteuid sets the effective UID.
func (c *Context) Seteuid(u vos.UID) error {
	_, err := c.sys1(Seteuid, u)
	return err
}

// Setreuid sets real and effective UIDs (NoChange semantics apply to
// the canonical values).
func (c *Context) Setreuid(ruid, euid vos.UID) error {
	_, err := c.sys2(Setreuid, ruid, euid)
	return err
}

// Setgid sets the process GID.
func (c *Context) Setgid(g vos.GID) error {
	_, err := c.sys1(Setgid, g)
	return err
}

// Setegid sets the effective GID.
func (c *Context) Setegid(g vos.GID) error {
	_, err := c.sys1(Setegid, g)
	return err
}

// Listen binds a listening socket on port.
func (c *Context) Listen(port uint16) (int, error) {
	v, err := c.sys1(Listen, word.Word(port))
	return int(v), err
}

// Accept waits for a connection on listener fd lfd.
func (c *Context) Accept(lfd int) (int, error) {
	v, err := c.sys1(Accept, word.Word(lfd))
	return int(v), err
}

// RecvMem receives one message into variant memory at addr (capacity
// n). It returns the message length; 0 means end of stream.
func (c *Context) RecvMem(fd int, addr vmem.Addr, n uint32) (uint32, error) {
	v, err := c.sys3(Recv, word.Word(fd), addr, word.Word(n))
	return uint32(v), err
}

// SendMem transmits n bytes of variant memory at addr on fd.
func (c *Context) SendMem(fd int, addr vmem.Addr, n uint32) error {
	_, err := c.sys3(Send, word.Word(fd), addr, word.Word(n))
	return err
}

// SendString transmits s on fd via the scratch buffer.
func (c *Context) SendString(fd int, s string) error {
	addr, err := c.scratchBuf(uint32(len(s)))
	if err != nil {
		return err
	}
	if err := c.Mem.WriteString(addr, s); err != nil {
		return err
	}
	return c.SendMem(fd, addr, uint32(len(s)))
}

// SendBytes transmits b on fd via the scratch buffer — the
// allocation-free sibling of SendString for reused response buffers.
func (c *Context) SendBytes(fd int, b []byte) error {
	addr, err := c.scratchBuf(uint32(len(b)))
	if err != nil {
		return err
	}
	if err := c.Mem.WriteBytes(addr, b); err != nil {
		return err
	}
	return c.SendMem(fd, addr, uint32(len(b)))
}

// Time returns the kernel's virtual timestamp (identical across
// variants).
func (c *Context) Time() (word.Word, error) {
	return c.sys0(Time)
}

// Prefork starts w-1 additional worker lanes running the program's
// RunWorker body and returns w. Only worker lane 0 may call it, once,
// and every variant program of the group must implement WorkerProgram.
func (c *Context) Prefork(w int) (int, error) {
	v, err := c.sys1(Prefork, word.Word(w))
	return int(v), err
}

// ScoreAdd atomically adds delta to the group-wide scoreboard counter
// and returns the new total (identical across the lane's variants).
func (c *Context) ScoreAdd(delta word.Word) (word.Word, error) {
	return c.sys1(ScoreAdd, delta)
}

// UIDValue exposes a single UID value to the monitor (Table 2):
// the kernel checks cross-variant equivalence and returns the value
// unchanged.
func (c *Context) UIDValue(u vos.UID) (vos.UID, error) {
	return c.sys1(UIDValue, u)
}

// CondChk exposes a UID-influenced condition value to the monitor
// (Table 2) and returns it.
func (c *Context) CondChk(b bool) (bool, error) {
	v, err := c.sys1(CondChk, boolWord(b))
	return v != 0, err
}

// CCEq compares two UIDs for equality under monitor supervision.
func (c *Context) CCEq(a, b vos.UID) (bool, error) { return c.cc(CCEq, a, b) }

// CCNeq compares two UIDs for inequality under monitor supervision.
func (c *Context) CCNeq(a, b vos.UID) (bool, error) { return c.cc(CCNeq, a, b) }

// CCLt compares a < b under monitor supervision.
func (c *Context) CCLt(a, b vos.UID) (bool, error) { return c.cc(CCLt, a, b) }

// CCLeq compares a ≤ b under monitor supervision.
func (c *Context) CCLeq(a, b vos.UID) (bool, error) { return c.cc(CCLeq, a, b) }

// CCGt compares a > b under monitor supervision.
func (c *Context) CCGt(a, b vos.UID) (bool, error) { return c.cc(CCGt, a, b) }

// CCGeq compares a ≥ b under monitor supervision.
func (c *Context) CCGeq(a, b vos.UID) (bool, error) { return c.cc(CCGeq, a, b) }

func (c *Context) cc(num Num, a, b vos.UID) (bool, error) {
	v, err := c.sys2(num, a, b)
	return v != 0, err
}

func boolWord(b bool) word.Word {
	if b {
		return 1
	}
	return 0
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc struct {
	// ProgName is returned by Name.
	ProgName string
	// Fn is the program body.
	Fn func(ctx *Context) error
}

var _ Program = ProgramFunc{}

// Name implements Program.
func (p ProgramFunc) Name() string { return p.ProgName }

// Run implements Program.
func (p ProgramFunc) Run(ctx *Context) error { return p.Fn(ctx) }

// WorkerProgramFunc adapts a pair of functions to WorkerProgram.
type WorkerProgramFunc struct {
	ProgramFunc
	// WorkerFn is the worker-lane body.
	WorkerFn func(ctx *Context, worker int) error
}

var _ WorkerProgram = WorkerProgramFunc{}

// RunWorker implements WorkerProgram.
func (p WorkerProgramFunc) RunWorker(ctx *Context, worker int) error { return p.WorkerFn(ctx, worker) }
