// Package sys defines the system-call ABI between variant programs and
// the monitor kernel.
//
// System calls are the paper's synchronization and monitoring points
// (§3.1): once one variant makes a system call, it does not proceed
// until all variants make the same call; the wrappers check argument
// equivalence, perform input operations once (replicating results),
// and perform output operations once (after cross-checking payloads).
// This package also defines the detection system calls of Table 2
// (uid_value, cond_chk, cc_eq … cc_geq) that transformed programs use
// to expose UID uses to the monitor at the point of use.
package sys

import (
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Num identifies a system call.
type Num int

// System call numbers.
const (
	// Exit terminates the variant group. Args: status.
	Exit Num = iota + 1
	// Open opens a file. Data: path. Args: flags, perm. Returns fd.
	Open
	// CloseFD closes a descriptor. Args: fd.
	CloseFD
	// Read reads from a file descriptor into variant memory.
	// Args: fd, addr, len. Returns bytes read. Input class.
	Read
	// Write writes from variant memory to a descriptor.
	// Args: fd, addr, len. Returns bytes written. Output class.
	Write
	// Stat returns file metadata. Data: path. Returns size; the UID
	// owner is returned reexpressed per variant.
	Stat
	// Getuid/Geteuid/Getgid/Getegid return (reexpressed) credentials.
	Getuid
	Geteuid
	Getgid
	Getegid
	// Setuid and friends change credentials. UID-typed args.
	Setuid
	Seteuid
	Setreuid
	Setgid
	Setegid
	// Listen binds a listening socket. Args: port. Returns fd.
	Listen
	// Accept accepts a connection. Args: listener fd. Returns conn fd.
	Accept
	// Recv receives one message into variant memory. Args: fd, addr,
	// cap. Returns length (0 on end of stream). Input class.
	Recv
	// Send transmits variant memory. Args: fd, addr, len. Output class.
	Send
	// Time returns a deterministic, monotonically increasing virtual
	// timestamp — performed once, same value to all variants.
	Time

	// UIDValue is Table 2's uid_value(uid_t): the kernel checks that
	// the per-variant arguments are equivalent after inverse
	// reexpression and returns the passed value unchanged.
	UIDValue
	// CondChk is Table 2's cond_chk(bool): checks the condition value
	// is identical across variants and returns it.
	CondChk
	// CCEq … CCGeq are Table 2's two-argument UID comparisons: the
	// kernel checks equivalence of both UID args across variants, then
	// returns the truth value of the comparison computed on canonical
	// (inverse-reexpressed) values — so the variants' instruction
	// streams stay identical and no operator reversal is needed (§3.5).
	CCEq
	CCNeq
	CCLt
	CCLeq
	CCGt
	CCGeq

	// Prefork asks the monitor to start additional worker lanes — the
	// prefork-server fork(): each new lane is an independent N-variant
	// rendezvous over fresh per-lane address spaces, sharing the
	// group's descriptor table and credentials. Args: total worker
	// count W (the calling lane continues as worker 0; W-1 lanes are
	// spawned). Only worker lane 0 may prefork, exactly once.
	Prefork
	// ScoreAdd atomically adds its argument to the group-wide
	// scoreboard counter and returns the new total, performed once per
	// lane rendezvous with the same value replicated to every variant —
	// prefork Apache's shared-memory scoreboard reduced to one word,
	// letting concurrent worker lanes make identical decisions (e.g. a
	// served-connection budget) from a shared count. Args: delta.
	ScoreAdd
)

// String names the syscall as in the paper.
func (n Num) String() string {
	if s, ok := SpecFor(n); ok {
		return s.Name
	}
	return "unknown"
}

// Class partitions syscalls by how the monitor executes them (§3.1).
type Class int

// Syscall classes.
const (
	// ClassInput syscalls are performed once; the result is replicated
	// to all variants.
	ClassInput Class = iota + 1
	// ClassOutput syscalls are checked for payload equivalence and
	// performed once.
	ClassOutput
	// ClassState syscalls mutate shared kernel state (credentials,
	// file tables) after argument equivalence checks.
	ClassState
	// ClassDetect syscalls exist purely to expose data to the monitor
	// (Table 2).
	ClassDetect
	// ClassExit terminates the group.
	ClassExit
)

// ArgKind describes how the monitor canonicalizes one argument before
// comparing it across variants.
type ArgKind int

// Argument kinds.
const (
	// ArgPlain arguments must be bit-identical across variants.
	ArgPlain ArgKind = iota + 1
	// ArgUID arguments are inverse-reexpressed with the variant's UID
	// function before comparison — the R⁻¹ at the target interpreter.
	ArgUID
	// ArgAddr arguments are variant-local addresses; the monitor
	// canonicalizes them by clearing the partition bit and compares.
	ArgAddr
	// ArgBool arguments must be identical truth values.
	ArgBool
)

// Spec describes the kernel-visible shape of a syscall.
type Spec struct {
	// Name is the syscall's name.
	Name string
	// Class selects monitor execution semantics.
	Class Class
	// Args gives the canonicalization kind of each argument.
	Args []ArgKind
	// ReturnsUID marks calls whose result is a UID that the kernel
	// reexpresses per variant before returning (getuid & co.).
	ReturnsUID bool
	// TakesPath marks calls whose Data payload is a path that must be
	// identical across variants.
	TakesPath bool
}

var specs = map[Num]Spec{
	Exit:    {Name: "exit", Class: ClassExit, Args: []ArgKind{ArgPlain}},
	Open:    {Name: "open", Class: ClassState, Args: []ArgKind{ArgPlain, ArgPlain}, TakesPath: true},
	CloseFD: {Name: "close", Class: ClassState, Args: []ArgKind{ArgPlain}},
	Read:    {Name: "read", Class: ClassInput, Args: []ArgKind{ArgPlain, ArgAddr, ArgPlain}},
	Write:   {Name: "write", Class: ClassOutput, Args: []ArgKind{ArgPlain, ArgAddr, ArgPlain}},
	Stat:    {Name: "stat", Class: ClassInput, Args: nil, TakesPath: true},

	Getuid:  {Name: "getuid", Class: ClassInput, ReturnsUID: true},
	Geteuid: {Name: "geteuid", Class: ClassInput, ReturnsUID: true},
	Getgid:  {Name: "getgid", Class: ClassInput, ReturnsUID: true},
	Getegid: {Name: "getegid", Class: ClassInput, ReturnsUID: true},

	Setuid:   {Name: "setuid", Class: ClassState, Args: []ArgKind{ArgUID}},
	Seteuid:  {Name: "seteuid", Class: ClassState, Args: []ArgKind{ArgUID}},
	Setreuid: {Name: "setreuid", Class: ClassState, Args: []ArgKind{ArgUID, ArgUID}},
	Setgid:   {Name: "setgid", Class: ClassState, Args: []ArgKind{ArgUID}},
	Setegid:  {Name: "setegid", Class: ClassState, Args: []ArgKind{ArgUID}},

	Listen: {Name: "listen", Class: ClassState, Args: []ArgKind{ArgPlain}},
	Accept: {Name: "accept", Class: ClassInput, Args: []ArgKind{ArgPlain}},
	Recv:   {Name: "recv", Class: ClassInput, Args: []ArgKind{ArgPlain, ArgAddr, ArgPlain}},
	Send:   {Name: "send", Class: ClassOutput, Args: []ArgKind{ArgPlain, ArgAddr, ArgPlain}},
	Time:   {Name: "time", Class: ClassInput},

	Prefork:  {Name: "prefork", Class: ClassState, Args: []ArgKind{ArgPlain}},
	ScoreAdd: {Name: "score_add", Class: ClassInput, Args: []ArgKind{ArgPlain}},

	UIDValue: {Name: "uid_value", Class: ClassDetect, Args: []ArgKind{ArgUID}},
	CondChk:  {Name: "cond_chk", Class: ClassDetect, Args: []ArgKind{ArgBool}},
	CCEq:     {Name: "cc_eq", Class: ClassDetect, Args: []ArgKind{ArgUID, ArgUID}},
	CCNeq:    {Name: "cc_neq", Class: ClassDetect, Args: []ArgKind{ArgUID, ArgUID}},
	CCLt:     {Name: "cc_lt", Class: ClassDetect, Args: []ArgKind{ArgUID, ArgUID}},
	CCLeq:    {Name: "cc_leq", Class: ClassDetect, Args: []ArgKind{ArgUID, ArgUID}},
	CCGt:     {Name: "cc_gt", Class: ClassDetect, Args: []ArgKind{ArgUID, ArgUID}},
	CCGeq:    {Name: "cc_geq", Class: ClassDetect, Args: []ArgKind{ArgUID, ArgUID}},
}

// specTable is the dense array form of specs, indexed by Num — the
// monitor does one SpecFor per rendezvous, so the lookup should be an
// array load, not a map probe.
var specTable = func() []Spec {
	max := Num(0)
	for n := range specs {
		if n > max {
			max = n
		}
	}
	t := make([]Spec, max+1)
	for n, s := range specs {
		t[n] = s
	}
	return t
}()

// SpecFor returns the spec for a syscall number.
func SpecFor(n Num) (Spec, bool) {
	if n <= 0 || int(n) >= len(specTable) || specTable[n].Name == "" {
		return Spec{}, false
	}
	return specTable[n], true
}

// DetectionCalls lists the Table 2 syscalls in paper order.
func DetectionCalls() []Num {
	return []Num{UIDValue, CondChk, CCEq, CCNeq, CCLt, CCLeq, CCGt, CCGeq}
}

// Call is one system call as issued by a variant. Args and Data are
// borrowed from the issuing context's reusable buffers: the kernel may
// read them only until it replies to the call, never after.
type Call struct {
	// Num is the syscall number.
	Num Num
	// Args are the word-sized arguments (see Spec.Args for kinds).
	Args []word.Word
	// Data carries the path for TakesPath calls.
	Data []byte
}

// Reply is the kernel's response to a Call.
type Reply struct {
	// Val is the syscall return value.
	Val word.Word
	// Errno is the failure code, nil on success.
	Errno *vos.Errno
	// Killed reports that the monitor raised an alarm and terminated
	// the group; the variant must unwind immediately.
	Killed bool
	// Crashed reports an injected variant crash (chaos fault layer):
	// the syscall never reached the rendezvous, and every further
	// syscall from this variant fails the same way — the analogue of a
	// process dying mid-request. The monitor observes the variant's
	// death exactly as it would a real fault.
	Crashed bool
}

// Standard file descriptors.
const (
	FDStdin  = 0
	FDStdout = 1
	FDStderr = 2
)
