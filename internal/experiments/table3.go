package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/webbench"
)

// Table3Options sizes the performance experiment. The defaults trade a
// few seconds of runtime for stable shape; the paper's absolute
// numbers are not reproducible (different hardware and substrate), but
// the ratios between configurations are.
type Table3Options struct {
	// UnsatRequests is the request count for the single-engine run.
	UnsatRequests int
	// SatEngines is the saturated engine count (paper: 3 clients × 5
	// engines = 15).
	SatEngines int
	// SatRequestsPerEngine is each saturated engine's request count.
	SatRequestsPerEngine int
	// WorkFactor is the per-request CPU work in the server.
	WorkFactor int
	// Latency is the simulated one-way wire latency (makes the
	// unsaturated case I/O-bound, as on the paper's LAN).
	Latency time.Duration
	// SingleCPU pins GOMAXPROCS to 1 for the duration, reproducing the
	// paper's uniprocessor testbed (the ≈½ saturated throughput of the
	// 2-variant systems is a uniprocessor artifact).
	SingleCPU bool
}

// DefaultTable3Options returns the standard experiment sizing.
// WorkFactor is calibrated so that request processing is compute-bound
// under saturation (the paper's testbed property that makes redundant
// computation halve throughput) while the 1 ms wire latency keeps the
// single-client case I/O-bound.
func DefaultTable3Options() Table3Options {
	return Table3Options{
		UnsatRequests:        300,
		SatEngines:           15,
		SatRequestsPerEngine: 40,
		WorkFactor:           400,
		Latency:              time.Millisecond,
		SingleCPU:            true,
	}
}

// Table3Cell is one measurement pair.
type Table3Cell struct {
	// ThroughputKBps is in kilobytes per second.
	ThroughputKBps float64
	// LatencyMs is the mean request latency in milliseconds.
	LatencyMs float64
}

// Table3Row is one configuration's column of Table 3.
type Table3Row struct {
	// Config is the configuration.
	Config harness.Configuration
	// Unsaturated and Saturated are the two operating points.
	Unsaturated, Saturated Table3Cell
	// Errors counts failed requests across both runs (should be 0).
	Errors int
}

// Table3Result is the regenerated Table 3.
type Table3Result struct {
	// Rows hold configurations 1–4 in order.
	Rows []Table3Row
	// Paper holds the paper's published values for comparison.
	Paper []Table3Row
}

// PaperTable3 returns the published Table 3 values.
func PaperTable3() []Table3Row {
	return []Table3Row{
		{Config: harness.Config1Unmodified,
			Unsaturated: Table3Cell{1010, 5.81}, Saturated: Table3Cell{5420, 16.32}},
		{Config: harness.Config2Transformed,
			Unsaturated: Table3Cell{973, 5.81}, Saturated: Table3Cell{5372, 16.24}},
		{Config: harness.Config3AddressSpace,
			Unsaturated: Table3Cell{887, 6.56}, Saturated: Table3Cell{2369, 37.36}},
		{Config: harness.Config4UIDVariation,
			Unsaturated: Table3Cell{877, 6.65}, Saturated: Table3Cell{2262, 38.49}},
	}
}

// RunTable3 measures throughput and latency for the four
// configurations at both operating points.
func RunTable3(opts Table3Options) (Table3Result, error) {
	if opts.SingleCPU {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
	}
	res := Table3Result{Paper: PaperTable3()}
	configs := []harness.Configuration{
		harness.Config1Unmodified,
		harness.Config2Transformed,
		harness.Config3AddressSpace,
		harness.Config4UIDVariation,
	}
	for _, c := range configs {
		row, err := measureConfig(c, opts)
		if err != nil {
			return res, fmt.Errorf("configuration %d (%s): %w", c, c, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureConfig runs both operating points for one configuration.
func measureConfig(c harness.Configuration, opts Table3Options) (Table3Row, error) {
	row := Table3Row{Config: c}
	serverOpts := httpd.DefaultOptions()
	serverOpts.WorkFactor = opts.WorkFactor

	unsat, err := measureLoad(c, serverOpts, opts.Latency, webbench.Options{
		Engines:           1,
		RequestsPerEngine: opts.UnsatRequests,
	})
	if err != nil {
		return row, fmt.Errorf("unsaturated: %w", err)
	}
	row.Unsaturated = toCell(unsat)
	row.Errors += unsat.Errors

	sat, err := measureLoad(c, serverOpts, opts.Latency, webbench.Options{
		Engines:           opts.SatEngines,
		RequestsPerEngine: opts.SatRequestsPerEngine,
	})
	if err != nil {
		return row, fmt.Errorf("saturated: %w", err)
	}
	row.Saturated = toCell(sat)
	row.Errors += sat.Errors
	return row, nil
}

// measureLoad starts a fresh server, applies the load, and stops it.
func measureLoad(c harness.Configuration, serverOpts httpd.Options, latency time.Duration, load webbench.Options) (webbench.Metrics, error) {
	h, err := harness.Start(c, serverOpts, latency)
	if err != nil {
		return webbench.Metrics{}, err
	}
	metrics, err := webbench.Run(h.Net, h.Port, load)
	if err != nil {
		_, _ = h.Stop()
		return metrics, err
	}
	res, err := h.Stop()
	if err != nil {
		return metrics, err
	}
	if res.Alarm != nil {
		return metrics, fmt.Errorf("false alarm under benign load: %s", res.Alarm)
	}
	return metrics, nil
}

func toCell(m webbench.Metrics) Table3Cell {
	return Table3Cell{
		ThroughputKBps: m.ThroughputKBps(),
		LatencyMs:      float64(m.MeanLatency().Microseconds()) / 1000,
	}
}

// Fprint renders measured-vs-paper in the paper's Table 3 layout.
func (r Table3Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 3. Performance Results (measured on the simulated substrate; paper values for shape comparison).")
	fmt.Fprintf(w, "%-28s %-26s %-26s\n", "", "Unsaturated", "Saturated")
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n", "Configuration", "KB/s", "ms", "KB/s", "ms")
	for i, row := range r.Rows {
		fmt.Fprintf(w, "%-28s %12.1f %12.3f %12.1f %12.3f\n",
			row.Config.String(), row.Unsaturated.ThroughputKBps, row.Unsaturated.LatencyMs,
			row.Saturated.ThroughputKBps, row.Saturated.LatencyMs)
		if i < len(r.Paper) {
			p := r.Paper[i]
			fmt.Fprintf(w, "%-28s %12.0f %12.2f %12.0f %12.2f\n",
				"  (paper)", p.Unsaturated.ThroughputKBps, p.Unsaturated.LatencyMs,
				p.Saturated.ThroughputKBps, p.Saturated.LatencyMs)
		}
	}
	r.fprintShape(w)
}

// fprintShape prints the ratios the paper highlights.
func (r Table3Result) fprintShape(w io.Writer) {
	if len(r.Rows) < 4 {
		return
	}
	base, twoVar, uid := r.Rows[0], r.Rows[2], r.Rows[3]
	fmt.Fprintf(w, "\nShape checks (paper's headline ratios):\n")
	fmt.Fprintf(w, "  config3/config1 saturated throughput: %.2f (paper 0.44, i.e. -56%%)\n",
		ratio(twoVar.Saturated.ThroughputKBps, base.Saturated.ThroughputKBps))
	fmt.Fprintf(w, "  config4/config3 saturated throughput: %.2f (paper 0.95, i.e. -4.5%%)\n",
		ratio(uid.Saturated.ThroughputKBps, twoVar.Saturated.ThroughputKBps))
	fmt.Fprintf(w, "  config2/config1 saturated throughput: %.2f (paper 0.99)\n",
		ratio(r.Rows[1].Saturated.ThroughputKBps, base.Saturated.ThroughputKBps))
	fmt.Fprintf(w, "  config3/config1 unsaturated throughput: %.2f (paper 0.88)\n",
		ratio(twoVar.Unsaturated.ThroughputKBps, base.Unsaturated.ThroughputKBps))
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ShapeHolds checks the qualitative claims of §4: the transformation
// is nearly free, the 2-variant systems roughly halve saturated
// throughput, and the UID variation adds only a small extra cost over
// the 2-variant baseline.
func (r Table3Result) ShapeHolds() error {
	if len(r.Rows) < 4 {
		return fmt.Errorf("incomplete table: %d rows", len(r.Rows))
	}
	c1, c2, c3, c4 := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3]
	if rr := ratio(c2.Saturated.ThroughputKBps, c1.Saturated.ThroughputKBps); rr < 0.85 {
		return fmt.Errorf("transformation overhead too high: config2/config1 = %.2f", rr)
	}
	if rr := ratio(c3.Saturated.ThroughputKBps, c1.Saturated.ThroughputKBps); rr > 0.75 {
		return fmt.Errorf("2-variant saturated throughput did not drop: config3/config1 = %.2f", rr)
	}
	if rr := ratio(c4.Saturated.ThroughputKBps, c3.Saturated.ThroughputKBps); rr < 0.70 {
		return fmt.Errorf("UID variation cost too high: config4/config3 = %.2f", rr)
	}
	if c3.Saturated.LatencyMs <= c1.Saturated.LatencyMs {
		return fmt.Errorf("2-variant saturated latency did not rise (%.3f <= %.3f)",
			c3.Saturated.LatencyMs, c1.Saturated.LatencyMs)
	}
	return nil
}
