package experiments

import (
	"fmt"
	"io"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/vos"
	"nvariant/internal/webbench"
)

// NSweepOptions sizes the N-sweep: detection rate and throughput of
// the full configuration-4 stack as the variant count grows. This goes
// beyond the paper, whose evaluation stops at N = 2; related work
// (arXiv:2111.10090) predicts effectiveness grows with the number of
// simultaneously deployed variants, and the sweep produces the numbers
// for this reproduction.
type NSweepOptions struct {
	// Ns lists the group sizes to sweep (default 2,3,4,5).
	Ns []int
	// Trials is the number of independent attack trials per N, each on
	// a freshly generated spec (default 3).
	Trials int
	// Engines is the concurrent webbench engine count of the
	// throughput measurement.
	Engines int
	// RequestsPerEngine is each engine's request count.
	RequestsPerEngine int
	// WorkFactor is the per-request CPU work in the servers.
	WorkFactor int
	// Workers is the per-group prefork worker-lane count (0 = serial).
	Workers int
	// Latency is the simulated one-way wire latency.
	Latency time.Duration
	// Seed drives spec generation (0 means a fixed default so runs are
	// reproducible unless explicitly varied).
	Seed int64
}

// DefaultNSweepOptions returns the standard sizing.
func DefaultNSweepOptions() NSweepOptions {
	return NSweepOptions{
		Ns:                []int{2, 3, 4, 5},
		Trials:            3,
		Engines:           8,
		RequestsPerEngine: 15,
		WorkFactor:        200,
	}
}

// NSweepRow is one swept group size.
type NSweepRow struct {
	// N is the group size.
	N int
	// Spec describes the generated DiversitySpec of the throughput run.
	Spec string
	// Load is the benign saturated-load measurement.
	Load webbench.Metrics
	// Detections counts detected attack trials (out of Trials).
	Detections int
	// Trials is the attack trial count.
	Trials int
	// Leaks counts trials in which the secret was disclosed (must stay
	// 0 at every N).
	Leaks int
}

// DetectionRate is Detections over Trials.
func (r NSweepRow) DetectionRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Detections) / float64(r.Trials)
}

// NSweepReport is the sweep result.
type NSweepReport struct {
	// Opts is the sizing used.
	Opts NSweepOptions
	// Rows holds one row per swept N.
	Rows []NSweepRow
}

// RunNSweep measures, for each N, benign throughput under load (with
// no false alarms allowed) and the detection rate of the planted
// UID-forging attack, each trial on a freshly generated N-variant
// DiversitySpec carrying the full §4 stack.
func RunNSweep(opts NSweepOptions) (*NSweepReport, error) {
	if len(opts.Ns) == 0 {
		opts.Ns = []int{2, 3, 4, 5}
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	if opts.Engines <= 0 || opts.RequestsPerEngine <= 0 {
		return nil, fmt.Errorf("nsweep: non-positive sizing: %+v", opts)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	report := &NSweepReport{Opts: opts}
	for _, n := range opts.Ns {
		if n < 2 {
			return nil, fmt.Errorf("nsweep: N must be at least 2, got %d", n)
		}
		row, err := runNSweepCell(opts, n, seed)
		if err != nil {
			return nil, fmt.Errorf("nsweep N=%d: %w", n, err)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// nSweepSpec generates the cell's deployment spec.
func nSweepSpec(seed int64, n int, trial int) *reexpress.Spec {
	return reexpress.Generate(seed+int64(1000*n+trial), n,
		reexpress.LayerUID, reexpress.LayerAddressPartition, reexpress.LayerUnsharedFiles)
}

// startNSweepGroup launches one N-variant configuration-4 group.
func startNSweepGroup(opts NSweepOptions, spec *reexpress.Spec) (*harness.Handle, error) {
	serverOpts := httpd.DefaultOptions()
	serverOpts.WorkFactor = opts.WorkFactor
	return harness.StartSpec(simnet.New(opts.Latency), harness.GroupSpec{
		Config:    harness.Config4UIDVariation,
		Server:    serverOpts,
		Diversity: spec,
		Workers:   opts.Workers,
	})
}

// runNSweepCell measures one group size.
func runNSweepCell(opts NSweepOptions, n int, seed int64) (NSweepRow, error) {
	row := NSweepRow{N: n, Trials: opts.Trials}

	// Throughput under benign load: any alarm here is a false positive.
	spec := nSweepSpec(seed, n, 0)
	row.Spec = spec.String()
	h, err := startNSweepGroup(opts, spec)
	if err != nil {
		return row, err
	}
	m, err := webbench.Run(h.Net, h.Port, webbench.Options{
		Engines:           opts.Engines,
		RequestsPerEngine: opts.RequestsPerEngine,
	})
	if err != nil {
		_, _ = h.Stop()
		return row, fmt.Errorf("load: %w", err)
	}
	res, err := h.Stop()
	if err != nil {
		return row, err
	}
	if res.Alarm != nil {
		return row, fmt.Errorf("false alarm under benign load: %+v", res.Alarm)
	}
	if m.Errors > 0 {
		return row, fmt.Errorf("%d request errors under benign load", m.Errors)
	}
	row.Load = m

	// Detection trials: each on a fresh group with a fresh spec.
	for trial := 1; trial <= opts.Trials; trial++ {
		detected, leaked, err := runNSweepTrial(opts, nSweepSpec(seed, n, trial))
		if err != nil {
			return row, fmt.Errorf("trial %d: %w", trial, err)
		}
		if detected {
			row.Detections++
		}
		if leaked {
			row.Leaks++
		}
	}
	return row, nil
}

// runNSweepTrial mounts the two-step UID-forging attack on one fresh
// group and reports whether the monitor detected it before any secret
// disclosure.
func runNSweepTrial(opts NSweepOptions, spec *reexpress.Spec) (detected, leaked bool, err error) {
	h, err := startNSweepGroup(opts, spec)
	if err != nil {
		return false, false, err
	}
	client := h.Client()
	if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
		_, _ = h.Stop()
		return false, false, fmt.Errorf("overflow: %w", err)
	}
	// Trigger the first use of the forged UID. On detection the monitor
	// kills the group and the connection drops with no response. With
	// worker lanes the trigger must reach the lane the overflow
	// corrupted (siblings serve it as a benign 403), so keep probing
	// until the kill — or a disclosure/deadline on a failed detection.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body, err := client.Get("/private/secret.html")
		if err == nil && code == 200 && httpd.ContainsSecret(body) {
			leaked = true
		}
		if err != nil || leaked || time.Now().After(deadline) {
			break
		}
	}
	res, err := h.Stop()
	if err != nil {
		return false, leaked, err
	}
	detected = res.Alarm != nil && res.Alarm.Reason == nvkernel.ReasonUIDDivergence
	return detected, leaked, nil
}

// Fprint renders the sweep as a table.
func (r *NSweepReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "N-sweep: detection and throughput vs variant count (%d engines x %d requests, %d trials/N)\n",
		r.Opts.Engines, r.Opts.RequestsPerEngine, r.Opts.Trials)
	fmt.Fprintf(w, "%-4s %-10s %-7s %12s %10s %10s\n",
		"N", "detection", "leaks", "KB/s", "mean ms", "p99 ms")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4d %2d/%-7d %-7d %12.1f %10.3f %10.3f\n",
			row.N, row.Detections, row.Trials, row.Leaks,
			row.Load.ThroughputKBps(),
			float64(row.Load.MeanLatency().Microseconds())/1000,
			float64(row.Load.P99Latency.Microseconds())/1000)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  N=%d spec: %s\n", row.N, row.Spec)
	}
}
