// Package experiments regenerates every table and figure of the
// paper's evaluation: Table 1 (reexpression functions), Table 2
// (detection system calls), Table 3 (performance), the Figure 1 and
// Figure 2 detection semantics, the §3.2 partial-overwrite campaign
// and the §4 transformation change counts. Each runner returns a
// structured result and can render itself in the paper's layout.
package experiments

import (
	"fmt"
	"io"

	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// Table1Row is one catalogue row plus its verified properties.
type Table1Row struct {
	// Variation is the row's name.
	Variation string
	// Target is the diversified type.
	Target string
	// R0 and R1 describe the reexpression functions.
	R0, R1 string
	// InverseHolds records the §2.2 inverse-property check.
	InverseHolds bool
	// DisjointHolds records the §2.3 disjointness-property check.
	DisjointHolds bool
}

// Table1Result is the regenerated Table 1.
type Table1Result struct {
	// Rows are the four variations in paper order.
	Rows []Table1Row
}

// RunTable1 rebuilds Table 1 and verifies both security properties of
// every variation on the adversarial boundary sample set.
func RunTable1() (Table1Result, error) {
	samples := reexpress.BoundarySamples()
	var res Table1Result
	for _, v := range reexpress.Table1() {
		row := Table1Row{
			Variation: v.Name,
			Target:    v.Target.String(),
			R0:        v.Pair.R0.Name(),
			R1:        v.Pair.R1.Name(),
		}
		row.InverseHolds = reexpress.CheckInverse(v.Pair.R0, samples) == nil &&
			reexpress.CheckInverse(v.Pair.R1, samples) == nil
		row.DisjointHolds = reexpress.CheckDisjoint(v.Pair.R0, v.Pair.R1, samples) == nil
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fprint renders the table in the paper's layout.
func (r Table1Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Reexpression Functions.")
	fmt.Fprintf(w, "%-38s %-12s %-34s %-34s %-8s %-9s\n",
		"Variation", "Target Type", "R0", "R1", "Inverse", "Disjoint")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-38s %-12s %-34s %-34s %-8v %-9v\n",
			row.Variation, row.Target, row.R0, row.R1, row.InverseHolds, row.DisjointHolds)
	}
}

// AllPropertiesHold reports whether every row passed both checks.
func (r Table1Result) AllPropertiesHold() bool {
	for _, row := range r.Rows {
		if !row.InverseHolds || !row.DisjointHolds {
			return false
		}
	}
	return len(r.Rows) > 0
}

// UIDRepresentationExamples demonstrates the UID variation's concrete
// representations (§3.2): for each canonical UID, the value each
// variant stores.
func UIDRepresentationExamples(uids []word.Word) ([][3]word.Word, error) {
	pair := reexpress.UIDVariation().Pair
	out := make([][3]word.Word, 0, len(uids))
	for _, u := range uids {
		r0, err := pair.R0.Apply(u)
		if err != nil {
			return nil, fmt.Errorf("apply R0(%s): %w", u, err)
		}
		r1, err := pair.R1.Apply(u)
		if err != nil {
			return nil, fmt.Errorf("apply R1(%s): %w", u, err)
		}
		out = append(out, [3]word.Word{u, r0, r1})
	}
	return out, nil
}
