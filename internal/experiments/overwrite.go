package experiments

import (
	"fmt"
	"io"

	"nvariant/internal/attack"
	"nvariant/internal/reexpress"
	"nvariant/internal/word"
)

// OverwriteResult is the §3.2 partial-overwrite campaign: every
// corruption primitive evaluated against the deployed UID mask
// (0x7FFFFFFF) and the ideal full flip (0xFFFFFFFF).
type OverwriteResult struct {
	// Victim is the canonical UID under attack.
	Victim word.Word
	// Rows pair each primitive's outcome under both masks.
	Rows []OverwriteRow
}

// OverwriteRow is one primitive's outcomes.
type OverwriteRow struct {
	// Name names the primitive.
	Name string
	// Granularity is word/byte/bit.
	Granularity attack.Granularity
	// Style is write (attacker-chosen bits, the paper's threat model)
	// or flip (XOR fault, outside any XOR mask's protected class).
	Style attack.Style
	// UIDMask is the outcome under R1(u) = u ⊕ 0x7FFFFFFF.
	UIDMask attack.Outcome
	// FullFlip is the outcome under R1(u) = u ⊕ 0xFFFFFFFF.
	FullFlip attack.Outcome
}

// RunOverwriteCampaign evaluates the standard §3.2 corruption set.
func RunOverwriteCampaign() (OverwriteResult, error) {
	const victim = word.Word(30) // wwwrun
	res := OverwriteResult{Victim: victim}
	uidPair := reexpress.UIDVariation().Pair
	flipPair := reexpress.UIDFullFlipVariation().Pair
	for _, ow := range attack.StandardOverwrites() {
		u, err := attack.Evaluate(uidPair, victim, ow)
		if err != nil {
			return res, fmt.Errorf("uid mask %q: %w", ow.Name, err)
		}
		f, err := attack.Evaluate(flipPair, victim, ow)
		if err != nil {
			return res, fmt.Errorf("full flip %q: %w", ow.Name, err)
		}
		res.Rows = append(res.Rows, OverwriteRow{
			Name:        ow.Name,
			Granularity: ow.Granularity,
			Style:       ow.Style,
			UIDMask:     u,
			FullFlip:    f,
		})
	}
	return res, nil
}

// UndetectedUnderUIDMask lists write-style primitives (the paper's
// threat model) that corrupt without detection under the deployed
// mask — the paper predicts exactly the high-bit overwrite (§3.2).
func (r OverwriteResult) UndetectedUnderUIDMask() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Style == attack.StyleWrite && row.UIDMask == attack.OutcomeCorrupted {
			out = append(out, row.Name)
		}
	}
	return out
}

// UndetectedUnderFullFlip lists undetected write-style corruptions
// under the ideal mask (the paper's argument implies none).
func (r OverwriteResult) UndetectedUnderFullFlip() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Style == attack.StyleWrite && row.FullFlip == attack.OutcomeCorrupted {
			out = append(out, row.Name)
		}
	}
	return out
}

// FlipFaultsUndetected lists flip-style faults that corrupt without
// detection under the deployed mask. XOR reexpression commutes with
// XOR faults, so every effective flip lands here: flip-granularity
// faults are outside the protected attack class of any XOR-based data
// variation (the paper's threat-model discussion in §3.2 excludes
// them as unrealistic for remote attackers).
func (r OverwriteResult) FlipFaultsUndetected() []string {
	var out []string
	for _, row := range r.Rows {
		if row.Style == attack.StyleFlip && row.UIDMask == attack.OutcomeCorrupted {
			out = append(out, row.Name)
		}
	}
	return out
}

// Fprint renders the campaign table.
func (r OverwriteResult) Fprint(w io.Writer) {
	fmt.Fprintf(w, "§3.2 overwrite campaign against UID %s (wwwrun):\n", r.Victim.Decimal())
	fmt.Fprintf(w, "  %-32s %-6s %-6s %-24s %-24s\n", "overwrite", "gran", "style", "mask 0x7FFFFFFF", "mask 0xFFFFFFFF")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-32s %-6s %-6s %-24s %-24s\n",
			row.Name, row.Granularity, row.Style, row.UIDMask, row.FullFlip)
	}
	fmt.Fprintf(w, "  undetected writes under deployed mask: %v (paper's acknowledged residual: the high bit)\n",
		r.UndetectedUnderUIDMask())
	fmt.Fprintf(w, "  undetected flip faults: %d (XOR masks commute with flips; outside the protected class)\n",
		len(r.FlipFaultsUndetected()))
}
