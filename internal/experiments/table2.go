package experiments

import (
	"fmt"
	"io"

	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Table2Row reports one detection syscall: its paper signature and the
// observed behaviour with agreeing and with divergent variants.
type Table2Row struct {
	// Call is the syscall name.
	Call string
	// Signature is the paper's function signature.
	Signature string
	// AgreeClean is true when equivalent per-variant arguments pass.
	AgreeClean bool
	// DivergeDetected is true when inequivalent arguments alarm.
	DivergeDetected bool
}

// Table2Result is the regenerated Table 2 with behavioural evidence.
type Table2Result struct {
	// Rows cover each detection syscall.
	Rows []Table2Row
}

var table2Signatures = map[sys.Num]string{
	sys.UIDValue: "uid_t uid_value(uid_t)",
	sys.CondChk:  "bool cond_chk(bool)",
	sys.CCEq:     "bool cc_eq(uid_t, uid_t)",
	sys.CCNeq:    "bool cc_neq(uid_t, uid_t)",
	sys.CCLt:     "bool cc_lt(uid_t, uid_t)",
	sys.CCLeq:    "bool cc_leq(uid_t, uid_t)",
	sys.CCGt:     "bool cc_gt(uid_t, uid_t)",
	sys.CCGeq:    "bool cc_geq(uid_t, uid_t)",
}

// RunTable2 exercises every Table 2 detection syscall twice under the
// UID variation: once with properly reexpressed (equivalent) values,
// once with identical concrete (attacker-shaped) values.
func RunTable2() (Table2Result, error) {
	pair := reexpress.UIDVariation().Pair
	var res Table2Result
	for _, num := range sys.DetectionCalls() {
		num := num
		agree, err := runDetection(pair, num, true)
		if err != nil {
			return res, fmt.Errorf("%s agree: %w", num, err)
		}
		diverge, err := runDetection(pair, num, false)
		if err != nil {
			return res, fmt.Errorf("%s diverge: %w", num, err)
		}
		res.Rows = append(res.Rows, Table2Row{
			Call:            num.String(),
			Signature:       table2Signatures[num],
			AgreeClean:      agree.Clean,
			DivergeDetected: diverge.Alarm != nil,
		})
	}
	return res, nil
}

// runDetection runs a 2-variant group issuing one detection call.
// When reexpress is true the arguments are correctly transformed per
// variant; otherwise both variants pass identical concrete values (the
// attacker's only option).
func runDetection(pair reexpress.Pair, num sys.Num, reexpressArgs bool) (*nvkernel.Result, error) {
	world, err := vos.NewWorld()
	if err != nil {
		return nil, err
	}
	canonical := []word.Word{1000, 30}
	progs := make([]sys.Program, 2)
	for i := 0; i < 2; i++ {
		f := pair.Funcs()[i]
		progs[i] = sys.ProgramFunc{ProgName: "detect", Fn: func(ctx *sys.Context) error {
			args := make([]word.Word, 0, 2)
			spec, _ := sys.SpecFor(num)
			for j := range spec.Args {
				v := canonical[j]
				if spec.Args[j] == sys.ArgBool {
					v = 1
					if !reexpressArgs && ctx.Variant == 1 {
						v = 0 // divergent condition value
					}
					args = append(args, v)
					continue
				}
				if reexpressArgs {
					rv, err := f.Apply(v)
					if err != nil {
						return err
					}
					args = append(args, rv)
				} else {
					args = append(args, v) // identical concrete value
				}
			}
			if _, err := ctx.Syscall(sys.Call{Num: num, Args: args}); err != nil {
				return err
			}
			return ctx.Exit(0)
		}}
	}
	return nvkernel.Run(world, simnet.New(0), progs, nvkernel.WithUIDVariation(pair))
}

// Fprint renders the table.
func (r Table2Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Table 2. Detection System Calls.")
	fmt.Fprintf(w, "%-12s %-28s %-18s %-18s\n", "Call", "Signature", "equiv args", "identical args")
	for _, row := range r.Rows {
		agree := "clean"
		if !row.AgreeClean {
			agree = "FALSE ALARM"
		}
		diverge := "DETECTED"
		if !row.DivergeDetected {
			diverge = "MISSED"
		}
		fmt.Fprintf(w, "%-12s %-28s %-18s %-18s\n", row.Call, row.Signature, agree, diverge)
	}
}

// AllBehave reports whether every call passed both behavioural checks.
// (cond_chk's "identical args" case is the divergent-condition case.)
func (r Table2Result) AllBehave() bool {
	for _, row := range r.Rows {
		if !row.AgreeClean || !row.DivergeDetected {
			return false
		}
	}
	return len(r.Rows) > 0
}
