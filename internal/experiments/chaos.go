package experiments

import (
	"nvariant/internal/chaos"
)

// RunChaosCampaign is the experiments entry point for the chaos
// campaign: the standard attack × fault × N × W × stack sweep at the
// given seed (0 selects the fixed default, keeping runs reproducible
// unless explicitly varied). The returned matrix renders humans a
// summary via Fprint and machines the byte-identical JSON via JSON().
func RunChaosCampaign(seed int64) (*chaos.Result, error) {
	if seed == 0 {
		seed = 1
	}
	return chaos.Run(chaos.DefaultConfig(seed))
}

// RunFaultOnlyCampaign is the transparency matrix: every transparent
// fault plan against healthy full-stack groups, which must show zero
// alarms — the paper's benign-fault transparency claim under chaos.
func RunFaultOnlyCampaign(seed int64) (*chaos.Result, error) {
	if seed == 0 {
		seed = 1
	}
	return chaos.Run(chaos.FaultOnlyConfig(seed))
}
