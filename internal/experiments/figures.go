package experiments

import (
	"fmt"
	"io"

	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// Figure1Result reproduces the detection semantics of Figure 1
// (two-variant address-space partitioning): absolute-address
// injections against single-variant and two-variant deployments.
type Figure1Result struct {
	// Injections is the number of injected absolute addresses.
	Injections int
	// SingleVariantSucceeded counts injections that dereferenced
	// successfully on an (unprotected) single variant in the low
	// partition.
	SingleVariantSucceeded int
	// TwoVariantDetected counts injections detected by the 2-variant
	// system (one variant must fault — the address cannot be valid in
	// both partitions).
	TwoVariantDetected int
}

// RunFigure1 injects a spread of absolute addresses (valid-low,
// valid-high and unmapped) and records detection.
func RunFigure1() (Figure1Result, error) {
	// The victim program maps one page and dereferences the injected
	// address. Offsets within the mapped page model a precisely aimed
	// attack; others model imprecise aim.
	injected := []word.Word{
		0x00001000, 0x00001080, 0x000010FF, // aimed at variant 0's page
		0x80001000, 0x80001080, // aimed at variant 1's page
		0x00500000, 0x80500000, // unmapped in both
	}
	res := Figure1Result{Injections: len(injected)}

	for _, addr := range injected {
		addr := addr
		deref := func(ctx *sys.Context) error {
			// Map one full page so in-page offsets model a precisely
			// aimed exploit.
			if _, err := ctx.Mem.Alloc(4096); err != nil {
				return err
			}
			if _, err := ctx.Mem.LoadByte(addr); err != nil {
				return err
			}
			if _, err := ctx.Getuid(); err != nil {
				return err
			}
			return ctx.Exit(0)
		}

		// Single variant in the low partition (what the attacker
		// developed the exploit against).
		single, err := runGroup(1, deref, nvkernel.WithAddressPartition())
		if err != nil {
			return res, err
		}
		if single.Clean {
			res.SingleVariantSucceeded++
		}

		// Two-variant deployment.
		double, err := runGroup(2, deref, nvkernel.WithAddressPartition())
		if err != nil {
			return res, err
		}
		if double.Alarm != nil {
			res.TwoVariantDetected++
		}
	}
	return res, nil
}

// runGroup runs n identical variants of fn.
func runGroup(n int, fn func(*sys.Context) error, opts ...nvkernel.Option) (*nvkernel.Result, error) {
	world, err := vos.NewWorld()
	if err != nil {
		return nil, err
	}
	progs := make([]sys.Program, n)
	for i := range progs {
		progs[i] = sys.ProgramFunc{ProgName: "victim", Fn: fn}
	}
	return nvkernel.Run(world, simnet.New(0), progs, opts...)
}

// Fprint renders the Figure 1 experiment.
func (r Figure1Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 1 experiment: two-variant address partitioning vs absolute-address injection.")
	fmt.Fprintf(w, "  injected addresses:                 %d\n", r.Injections)
	fmt.Fprintf(w, "  single-variant exploit successes:   %d\n", r.SingleVariantSucceeded)
	fmt.Fprintf(w, "  two-variant detections:             %d / %d (an address cannot start with 0 and 1 at once)\n",
		r.TwoVariantDetected, r.Injections)
}

// Figure2Result reproduces the data-diversity dataflow of Figure 2:
// trusted data is reexpressed per variant and crosses the inverse
// functions cleanly, while attacker-injected identical data is caught
// at the target interpreter.
type Figure2Result struct {
	// TrustedRuns is the number of trusted-data flows exercised.
	TrustedRuns int
	// TrustedClean counts flows with no false alarm.
	TrustedClean int
	// InjectedRuns is the number of injected-data flows.
	InjectedRuns int
	// InjectedDetected counts detected injections.
	InjectedDetected int
	// Representations are example rows (canonical, R0, R1).
	Representations [][3]word.Word
}

// RunFigure2 drives trusted UIDs (via the diversified external files)
// and injected UIDs (identical concrete words) through the UID target
// interface.
func RunFigure2() (Figure2Result, error) {
	pair := reexpress.UIDVariation().Pair
	trusted := []string{"root", "wwwrun", "alice", "bob"}
	injected := []word.Word{0, 30, 1000, 0x7FFFFFFF}

	res := Figure2Result{}
	reps, err := UIDRepresentationExamples([]word.Word{0, 30, 1000, 1001})
	if err != nil {
		return res, err
	}
	res.Representations = reps

	for _, name := range trusted {
		name := name
		res.TrustedRuns++
		r, err := runUIDGroup(pair, func(ctx *sys.Context) error {
			// Trusted path: name → diversified passwd → uid_value.
			fd, err := ctx.Open("/etc/passwd", vos.ReadOnly, 0)
			if err != nil {
				return err
			}
			data, err := ctx.ReadAll(fd)
			if err != nil {
				return err
			}
			if err := ctx.Close(fd); err != nil {
				return err
			}
			users, err := vos.ParsePasswd(data)
			if err != nil {
				return err
			}
			u, ok := vos.LookupUser(users, name)
			if !ok {
				return vos.ErrNoEnt
			}
			if _, err := ctx.UIDValue(u.UID); err != nil {
				return err
			}
			return ctx.Exit(0)
		})
		if err != nil {
			return res, err
		}
		if r.Clean {
			res.TrustedClean++
		}
	}

	for _, uid := range injected {
		uid := uid
		res.InjectedRuns++
		r, err := runUIDGroup(pair, func(ctx *sys.Context) error {
			// Injected path: the same concrete word in every variant.
			if _, err := ctx.UIDValue(uid); err != nil {
				return err
			}
			return ctx.Exit(0)
		})
		if err != nil {
			return res, err
		}
		if r.Alarm != nil {
			res.InjectedDetected++
		}
	}
	return res, nil
}

// runUIDGroup runs two variants under the UID variation with
// diversified passwd files.
func runUIDGroup(pair reexpress.Pair, fn func(*sys.Context) error) (*nvkernel.Result, error) {
	world, err := vos.NewWorld()
	if err != nil {
		return nil, err
	}
	if err := nvkernel.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		return nil, err
	}
	progs := []sys.Program{
		sys.ProgramFunc{ProgName: "flow", Fn: fn},
		sys.ProgramFunc{ProgName: "flow", Fn: fn},
	}
	return nvkernel.Run(world, simnet.New(0), progs,
		nvkernel.WithUIDVariation(pair),
		nvkernel.WithUnsharedFiles("/etc/passwd", "/etc/group"),
	)
}

// Fprint renders the Figure 2 experiment.
func (r Figure2Result) Fprint(w io.Writer) {
	fmt.Fprintln(w, "Figure 2 experiment: data diversity dataflow (trusted vs injected UID data).")
	fmt.Fprintf(w, "  %-12s %-14s %-14s\n", "canonical", "R0 (variant 0)", "R1 (variant 1)")
	for _, rep := range r.Representations {
		fmt.Fprintf(w, "  %-12s %-14s %-14s\n", rep[0].Decimal(), rep[1], rep[2])
	}
	fmt.Fprintf(w, "  trusted flows clean:     %d / %d (normal equivalence)\n", r.TrustedClean, r.TrustedRuns)
	fmt.Fprintf(w, "  injected flows detected: %d / %d (disjoint inverses)\n", r.InjectedDetected, r.InjectedRuns)
}
