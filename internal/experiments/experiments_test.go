package experiments

import (
	"strings"
	"testing"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/word"
)

func TestTable1AllPropertiesHold(t *testing.T) {
	res, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if !res.AllPropertiesHold() {
		t.Errorf("property violation in Table 1: %+v", res.Rows)
	}
	var b strings.Builder
	res.Fprint(&b)
	for _, want := range []string{"UID Variation", "xor(0x7FFFFFFF)", "Address Space Partitioning"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestUIDRepresentationExamples(t *testing.T) {
	reps, err := UIDRepresentationExamples([]word.Word{0, 30})
	if err != nil {
		t.Fatal(err)
	}
	// Root: R0 = 0, R1 = 0x7FFFFFFF (§3.2).
	if reps[0][1] != 0 || reps[0][2] != 0x7FFFFFFF {
		t.Errorf("root representations = %v", reps[0])
	}
	if reps[1][1] != 30 || reps[1][2] != 30^0x7FFFFFFF {
		t.Errorf("wwwrun representations = %v", reps[1])
	}
}

func TestTable2AllBehave(t *testing.T) {
	res, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (Table 2 lists 8 calls)", len(res.Rows))
	}
	if !res.AllBehave() {
		t.Errorf("detection call misbehaved: %+v", res.Rows)
	}
	var b strings.Builder
	res.Fprint(&b)
	for _, want := range []string{"uid_value", "cond_chk", "cc_eq", "cc_geq", "DETECTED"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFigure1Detection(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.TwoVariantDetected != res.Injections {
		t.Errorf("two-variant detections = %d / %d, want all", res.TwoVariantDetected, res.Injections)
	}
	// The exploit works single-variant only when aimed at the right
	// partition: the three low-partition addresses.
	if res.SingleVariantSucceeded != 3 {
		t.Errorf("single-variant successes = %d, want 3", res.SingleVariantSucceeded)
	}
	var b strings.Builder
	res.Fprint(&b)
	if !strings.Contains(b.String(), "Figure 1") {
		t.Error("rendering missing title")
	}
}

func TestFigure2Dataflow(t *testing.T) {
	res, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrustedClean != res.TrustedRuns {
		t.Errorf("trusted flows clean = %d / %d (false alarms!)", res.TrustedClean, res.TrustedRuns)
	}
	if res.InjectedDetected != res.InjectedRuns {
		t.Errorf("injected flows detected = %d / %d", res.InjectedDetected, res.InjectedRuns)
	}
	var b strings.Builder
	res.Fprint(&b)
	if !strings.Contains(b.String(), "disjoint inverses") {
		t.Error("rendering missing detection line")
	}
}

func TestOverwriteCampaign(t *testing.T) {
	res, err := RunOverwriteCampaign()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: within its threat model (write-style
	// corruption), the ONLY undetected corruption under the deployed
	// mask is the high-bit overwrite (§3.2).
	undet := res.UndetectedUnderUIDMask()
	for _, name := range undet {
		if !strings.Contains(name, "high-bit") && !strings.Contains(name, "bit[31]") {
			t.Errorf("unexpected undetected write under deployed mask: %s", name)
		}
	}
	if len(undet) == 0 {
		t.Error("expected the high-bit residual to survive the deployed mask")
	}
	// The ideal mask closes every write-style gap.
	if w := res.UndetectedUnderFullFlip(); len(w) != 0 {
		t.Errorf("full flip left undetected writes: %v", w)
	}
	// Flip-style faults commute with XOR masks: every effective flip
	// corrupts undetected, delineating the protected class boundary.
	if flips := res.FlipFaultsUndetected(); len(flips) != 32 {
		t.Errorf("flip faults undetected = %d, want 32 (XOR commutes with flips)", len(flips))
	}
	var b strings.Builder
	res.Fprint(&b)
	if !strings.Contains(b.String(), "0x7FFFFFFF") {
		t.Error("rendering missing mask column")
	}
}

func TestOverwriteCampaignGranularityCoverage(t *testing.T) {
	res, err := RunOverwriteCampaign()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[attack.Granularity]int{}
	for _, row := range res.Rows {
		seen[row.Granularity]++
	}
	if seen[attack.GranWord] < 3 || seen[attack.GranByte] < 8 || seen[attack.GranBit] < 32 {
		t.Errorf("campaign coverage too thin: %v", seen)
	}
}

func TestTable3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 takes seconds")
	}
	opts := Table3Options{
		UnsatRequests:        80,
		SatEngines:           10,
		SatRequestsPerEngine: 25,
		WorkFactor:           400,
		Latency:              500 * time.Microsecond,
		SingleCPU:            true,
	}
	res, err := RunTable3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Errors != 0 {
			t.Errorf("%s: %d request errors", row.Config, row.Errors)
		}
		if row.Unsaturated.ThroughputKBps <= 0 || row.Saturated.ThroughputKBps <= 0 {
			t.Errorf("%s: nonpositive throughput %+v", row.Config, row)
		}
	}
	if err := res.ShapeHolds(); err != nil {
		t.Errorf("Table 3 shape: %v", err)
	}
	var b strings.Builder
	res.Fprint(&b)
	for _, want := range []string{"Table 3", "Unmodified Apache", "2-Variant UID", "(paper)"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}

func TestFleetAttackSmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaign takes a second")
	}
	opts := FleetAttackOptions{
		Groups:            2,
		Engines:           4,
		RequestsPerEngine: 10,
		Probes:            2,
		WorkFactor:        50,
	}
	r, err := RunFleetAttack(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detections != opts.Probes || r.DefendedLeaks != 0 {
		t.Errorf("detections = %d leaks = %d, want %d and 0", r.Detections, r.DefendedLeaks, opts.Probes)
	}
	if r.UndefendedLeaks < 1 {
		t.Errorf("undefended leaks = %d, want >= 1", r.UndefendedLeaks)
	}
	if len(r.Audit) != opts.Probes {
		t.Errorf("audit entries = %d, want %d", len(r.Audit), opts.Probes)
	}
	var b strings.Builder
	r.Fprint(&b)
	for _, want := range []string{"Fleet under attack", "throughput retained", "audit log", "detections: 2/2"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendering missing %q:\n%s", want, b.String())
		}
	}
}

func TestFleetAttackRejectsBadSizing(t *testing.T) {
	if _, err := RunFleetAttack(FleetAttackOptions{}); err == nil {
		t.Error("zero sizing accepted")
	}
}

func TestPaperTable3Values(t *testing.T) {
	p := PaperTable3()
	if len(p) != 4 {
		t.Fatalf("paper rows = %d", len(p))
	}
	if p[0].Saturated.ThroughputKBps != 5420 || p[3].Saturated.ThroughputKBps != 2262 {
		t.Error("paper values drifted from Table 3")
	}
}

// TestNSweepAllNsDetect is the DiversitySpec acceptance criterion:
// RunNSweep runs green for N ∈ {2,3,4,5} — every attack trial is
// detected, nothing leaks, and benign load raises no false alarm.
func TestNSweepAllNsDetect(t *testing.T) {
	opts := DefaultNSweepOptions()
	opts.Engines = 4
	opts.RequestsPerEngine = 6
	opts.WorkFactor = 50
	opts.Trials = 2
	r, err := RunNSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row.N != opts.Ns[i] {
			t.Errorf("row %d: N = %d, want %d", i, row.N, opts.Ns[i])
		}
		if row.Detections != row.Trials {
			t.Errorf("N=%d: detections = %d/%d (every planted attack must trigger)", row.N, row.Detections, row.Trials)
		}
		if row.Leaks != 0 {
			t.Errorf("N=%d: %d secret disclosures", row.N, row.Leaks)
		}
		if row.DetectionRate() != 1.0 {
			t.Errorf("N=%d: detection rate = %.2f", row.N, row.DetectionRate())
		}
		if row.Load.Requests == 0 || row.Load.Errors != 0 {
			t.Errorf("N=%d: load metrics = %+v", row.N, row.Load)
		}
	}
}

func TestNSweepRejectsBadSizing(t *testing.T) {
	if _, err := RunNSweep(NSweepOptions{Engines: -1}); err == nil {
		t.Error("negative engines accepted")
	}
	if _, err := RunNSweep(NSweepOptions{Ns: []int{1}, Engines: 1, RequestsPerEngine: 1}); err == nil {
		t.Error("N=1 accepted")
	}
}
