package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"nvariant/internal/attack"
	"nvariant/internal/fleet"
	"nvariant/internal/harness"
	"nvariant/internal/httpd"
	"nvariant/internal/reexpress"
	"nvariant/internal/vos"
	"nvariant/internal/webbench"
)

// FleetAttackOptions sizes the fleet-under-attack experiment: a pool
// of N-variant groups serves saturated webbench load while an attacker
// interleaves UID-forging probes through the same dispatcher.
type FleetAttackOptions struct {
	// Groups is the pool size.
	Groups int
	// Variants is the per-group variant count N (0 means the fleet
	// default of 2).
	Variants int
	// MaxVariants, when greater than Variants, lets each group draw
	// its own N from [Variants, MaxVariants].
	MaxVariants int
	// Stack is the variation stack of each defended group's generated
	// spec (nil means the fleet's default full §4 stack).
	Stack []reexpress.LayerKind
	// Workers is the per-group prefork worker-lane count (0 = serial
	// groups). Detection semantics are unchanged: a probe corrupts the
	// lane it lands on, and that lane's alarm kills the whole group.
	Workers int
	// Engines is the concurrent webbench engine count (15 = the
	// paper's saturated operating point).
	Engines int
	// RequestsPerEngine is each engine's request count per phase.
	RequestsPerEngine int
	// Probes is the number of UID-forging attack probes in the
	// campaign.
	Probes int
	// WorkFactor is the per-request CPU work in the servers.
	WorkFactor int
	// Latency is the simulated one-way wire latency.
	Latency time.Duration
	// Policy is the dispatcher's balancing policy.
	Policy fleet.Policy
	// SingleCPU pins GOMAXPROCS to 1 (the paper's uniprocessor
	// testbed). The fleet's scaling story is multi-core, so the
	// default is off.
	SingleCPU bool
	// Seed drives the fleet's reexpression-mask selection.
	Seed int64
}

// DefaultFleetAttackOptions returns the standard sizing: a 4-group
// pool under the paper's saturated 15-engine load with a 5-probe
// campaign.
func DefaultFleetAttackOptions() FleetAttackOptions {
	return FleetAttackOptions{
		Groups:            4,
		Engines:           15,
		RequestsPerEngine: 25,
		Probes:            5,
		WorkFactor:        200,
	}
}

// FleetAttackReport is the experiment's result: availability and
// throughput *during* an attack campaign, not just detection.
type FleetAttackReport struct {
	// Opts is the sizing used.
	Opts FleetAttackOptions

	// Baseline is the attack-free defended fleet's load metrics.
	Baseline webbench.Metrics
	// Attacked is the defended fleet's load metrics with the campaign
	// interleaved.
	Attacked webbench.Metrics
	// Undefended is an unprotected (configuration 1) fleet's load
	// metrics under the same campaign.
	Undefended webbench.Metrics

	// AttackedStats is the defended fleet's final state.
	AttackedStats fleet.Stats
	// Audit is the defended fleet's recovery log.
	Audit []fleet.AuditEntry

	// Detections counts alarmed group exits in the defended fleet.
	Detections int
	// DefendedLeaks counts secret disclosures against the defended
	// fleet (must be 0).
	DefendedLeaks int
	// UndefendedLeaks counts secret disclosures observed against the
	// unprotected fleet (cumulative: struck groups stay corrupted, so
	// any value >= 1 proves the attack works without diversity).
	UndefendedLeaks int
}

// ThroughputRetained is attacked over attack-free throughput of the
// defended fleet — the availability headline.
func (r *FleetAttackReport) ThroughputRetained() float64 {
	return ratio(r.Attacked.ThroughputKBps(), r.Baseline.ThroughputKBps())
}

// ErrorRate is the fraction of legitimate requests lost during the
// campaign (connections dropped by monitor kills and quarantine
// windows).
func (r *FleetAttackReport) ErrorRate() float64 {
	total := r.Attacked.Requests + r.Attacked.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Attacked.Errors) / float64(total)
}

// RunFleetAttack measures a defended fleet attack-free, the same fleet
// under an interleaved UID-forging campaign, and an undefended fleet
// under the same campaign.
func RunFleetAttack(opts FleetAttackOptions) (*FleetAttackReport, error) {
	if opts.Groups <= 0 || opts.Engines <= 0 || opts.RequestsPerEngine <= 0 || opts.Probes < 0 {
		return nil, fmt.Errorf("fleetattack: non-positive sizing: %+v", opts)
	}
	if opts.SingleCPU {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
	}
	report := &FleetAttackReport{Opts: opts}

	// Phase 1: the defended fleet, attack-free.
	base, _, _, err := runFleetPhase(opts, harness.Config4UIDVariation, 0)
	if err != nil {
		return nil, fmt.Errorf("baseline phase: %w", err)
	}
	report.Baseline = base

	// Phase 2: the defended fleet with the campaign interleaved.
	m, stats, leaks, err := runFleetPhase(opts, harness.Config4UIDVariation, opts.Probes)
	if err != nil {
		return nil, fmt.Errorf("attacked phase: %w", err)
	}
	report.Attacked = m
	report.AttackedStats = stats.Stats
	report.Audit = stats.Audit
	report.Detections = stats.Stats.Detections
	report.DefendedLeaks = leaks

	// Phase 3: an undefended fleet under the same campaign.
	um, _, uleaks, err := runFleetPhase(opts, harness.Config1Unmodified, opts.Probes)
	if err != nil {
		return nil, fmt.Errorf("undefended phase: %w", err)
	}
	report.Undefended = um
	report.UndefendedLeaks = uleaks

	return report, nil
}

// phaseStats bundles a phase's terminal fleet state.
type phaseStats struct {
	Stats fleet.Stats
	Audit []fleet.AuditEntry
}

// runFleetPhase starts a fleet of the given configuration, applies the
// webbench load with probes attack probes interleaved, and tears the
// fleet down.
func runFleetPhase(opts FleetAttackOptions, cfg harness.Configuration, probes int) (webbench.Metrics, phaseStats, int, error) {
	serverOpts := httpd.DefaultOptions()
	serverOpts.WorkFactor = opts.WorkFactor
	f, err := fleet.New(fleet.Options{
		Groups:      opts.Groups,
		Config:      cfg,
		Variants:    opts.Variants,
		MaxVariants: opts.MaxVariants,
		Stack:       opts.Stack,
		Workers:     opts.Workers,
		Server:      serverOpts,
		Policy:      opts.Policy,
		Latency:     opts.Latency,
		Seed:        opts.Seed,
	})
	if err != nil {
		return webbench.Metrics{}, phaseStats{}, 0, err
	}

	type loadResult struct {
		m   webbench.Metrics
		err error
	}
	loadDone := make(chan loadResult, 1)
	go func() {
		m, err := webbench.Run(f.Net(), f.Port(), webbench.Options{
			Engines:           opts.Engines,
			RequestsPerEngine: opts.RequestsPerEngine,
		})
		loadDone <- loadResult{m, err}
	}()

	leaks, campErr := runCampaign(f, probes, cfg == harness.Config4UIDVariation)
	load := <-loadDone

	// Let in-flight replacements finish booting: stopping right after
	// the last detection would abort its spawn and report a short pool.
	if campErr == nil && probes > 0 && cfg == harness.Config4UIDVariation {
		if err := f.AwaitReplenished(probes, opts.Groups, 15*time.Second); err != nil {
			campErr = fmt.Errorf("pool not replenished after campaign: %w", err)
		}
	}

	stats, stopErr := f.Stop()
	ps := phaseStats{Stats: stats, Audit: f.Audit().Entries()}
	switch {
	case campErr != nil:
		return load.m, ps, leaks, fmt.Errorf("campaign: %w", campErr)
	case load.err != nil:
		return load.m, ps, leaks, fmt.Errorf("load: %w", load.err)
	case stopErr != nil:
		return load.m, ps, leaks, fmt.Errorf("stop: %w", stopErr)
	}
	return load.m, ps, leaks, nil
}

// runCampaign mounts the two-step UID-forging attack probes times
// through the dispatcher. Against a defended fleet each probe's
// corruption must be detected (the struck group alarms at the first
// use of the forged UID — triggered by the attacker's own follow-up or
// by benign load, whichever reaches the group first); against an
// undefended fleet the attacker instead drives triggers until the
// secret leaks. Returns the number of secret disclosures observed.
func runCampaign(f *fleet.Fleet, probes int, expectDetection bool) (int, error) {
	leaks := 0
	client := f.Client()
	for i := 0; i < probes; i++ {
		if _, err := client.Raw(attack.ForgeUIDPayload(vos.Root)); err != nil {
			return leaks, fmt.Errorf("probe %d overflow: %w", i, err)
		}
		if expectDetection {
			deadline := time.Now().Add(15 * time.Second)
			for f.Stats().Detections < i+1 {
				if time.Now().After(deadline) {
					return leaks, fmt.Errorf("probe %d not detected (detections=%d)", i, f.Stats().Detections)
				}
				code, body, err := client.Get("/private/secret.html")
				if err == nil && code == 200 && httpd.ContainsSecret(body) {
					leaks++
				}
				time.Sleep(200 * time.Microsecond)
			}
			continue
		}
		// Undefended: drive triggers until a disclosure is observed.
		// Corruption persists (nothing ever kills a struck group), so
		// leaks are cumulative disclosures during the campaign — one
		// observed per probe-paced round — not proof that *this*
		// probe's overflow landed. The deadline, rather than a fixed
		// try count, keeps the loop sound under any balancing policy.
		leaked := false
		deadline := time.Now().Add(15 * time.Second)
		for !leaked {
			if time.Now().After(deadline) {
				return leaks, fmt.Errorf("probe %d: no disclosure from undefended fleet", i)
			}
			code, body, err := client.Get("/private/secret.html")
			if err == nil && code == 200 && httpd.ContainsSecret(body) {
				leaked = true
				leaks++
			}
		}
	}
	return leaks, nil
}

// Fprint renders the report.
func (r *FleetAttackReport) Fprint(w io.Writer) {
	variants := r.Opts.Variants
	if variants == 0 {
		variants = 2
	}
	nDesc := fmt.Sprintf("%d", variants)
	if r.Opts.MaxVariants > variants {
		nDesc = fmt.Sprintf("%d-%d", variants, r.Opts.MaxVariants)
	}
	fmt.Fprintf(w, "Fleet under attack: %d groups x %s variants, %d engines x %d requests, %d probes, policy %s\n",
		r.Opts.Groups, nDesc, r.Opts.Engines, r.Opts.RequestsPerEngine, r.Opts.Probes, r.Opts.Policy)
	fmt.Fprintf(w, "  %-34s %s\n", "defended, attack-free:", r.Baseline)
	fmt.Fprintf(w, "  %-34s %s\n", "defended, under campaign:", r.Attacked)
	fmt.Fprintf(w, "  %-34s %s\n", "undefended, under campaign:", r.Undefended)
	fmt.Fprintf(w, "  throughput retained under attack:  %.2f (acceptance: >= 0.50)\n", r.ThroughputRetained())
	fmt.Fprintf(w, "  legitimate-request error rate:     %.4f\n", r.ErrorRate())
	fmt.Fprintf(w, "  detections: %d/%d probes; defended leaks: %d; undefended leaks: %d\n",
		r.Detections, r.Opts.Probes, r.DefendedLeaks, r.UndefendedLeaks)
	fmt.Fprintf(w, "  fleet: %d spawned, %d quarantined, %d replaced, %d healthy at end\n",
		r.AttackedStats.Spawned, r.AttackedStats.Quarantined, r.AttackedStats.Replaced, len(r.AttackedStats.Healthy))
	if len(r.Audit) > 0 {
		fmt.Fprintln(w, "  audit log:")
		for _, e := range r.Audit {
			fmt.Fprintf(w, "    %s\n", e)
		}
	}
}
