package experiments_test

import (
	"testing"

	"nvariant/internal/experiments"
)

func TestNSweepDetectsWithWorkers(t *testing.T) {
	// The N-sweep's detection contract must survive intra-group
	// concurrency: with prefork worker lanes, every injected divergence
	// is still detected (the trial drives triggers until the corrupted
	// lane sees one) and nothing leaks.
	opts := experiments.NSweepOptions{
		Ns:                []int{2, 3},
		Trials:            2,
		Engines:           4,
		RequestsPerEngine: 6,
		WorkFactor:        20,
		Workers:           3,
	}
	rep, err := experiments.RunNSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.Detections != row.Trials {
			t.Errorf("N=%d: detections = %d/%d with workers", row.N, row.Detections, row.Trials)
		}
		if row.Leaks != 0 {
			t.Errorf("N=%d: %d leaks with workers", row.N, row.Leaks)
		}
		if row.Load.Errors != 0 {
			t.Errorf("N=%d: %d benign-load errors with workers", row.N, row.Load.Errors)
		}
	}
}

func TestFleetAttackWithWorkers(t *testing.T) {
	// The full availability experiment at W > 1: all probes detected,
	// no defended leaks, and the undefended fleet still leaks (the
	// corrupted lane keeps serving there, proving the attack works
	// without diversity even under prefork).
	opts := experiments.DefaultFleetAttackOptions()
	opts.Groups = 2
	opts.Engines = 4
	opts.RequestsPerEngine = 8
	opts.Probes = 2
	opts.WorkFactor = 20
	opts.Workers = 2
	rep, err := experiments.RunFleetAttack(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detections != opts.Probes {
		t.Errorf("detections = %d, want %d", rep.Detections, opts.Probes)
	}
	if rep.DefendedLeaks != 0 {
		t.Errorf("defended leaks = %d, want 0", rep.DefendedLeaks)
	}
	if rep.UndefendedLeaks == 0 {
		t.Error("undefended fleet never leaked: attack did not work under prefork")
	}
}
