package experiments

import (
	"fmt"
	"io"

	"nvariant/internal/minic"
	"nvariant/internal/nvkernel"
	"nvariant/internal/reexpress"
	"nvariant/internal/simnet"
	"nvariant/internal/sys"
	"nvariant/internal/transform"
	"nvariant/internal/vos"
	"nvariant/internal/word"
)

// ChangesResult reproduces the §4 transformation-effort accounting:
// the paper reports 73 manual changes to Apache; the automated
// transformer reports its own breakdown on the minic port of the
// server's UID module, plus behavioural validation of the transformed
// variants.
type ChangesResult struct {
	// Measured is the automated transformer's change breakdown.
	Measured transform.Counts
	// Paper is the paper's manual breakdown (15/16/22/20 = 73).
	Paper transform.Counts
	// InferredUIDVars lists int variables promoted by the Splint-style
	// analysis.
	InferredUIDVars []string
	// NormalClean reports that the transformed 2-variant system ran
	// benign workload with no false alarm (normal equivalence, §2.2).
	NormalClean bool
	// CorruptionDetected reports that identical-concrete-value UID
	// corruption was detected (the detection property, §2.3).
	CorruptionDetected bool
	// TransformedSource is variant 1's generated source (for display).
	TransformedSource string
}

// RunChanges transforms the case-study source for both variants,
// reports the counts, and validates both security properties of the
// transformed system.
func RunChanges() (ChangesResult, error) {
	pair := reexpress.UIDVariation().Pair
	res := ChangesResult{Paper: transform.PaperCounts()}

	r1, err := transform.Apply(transform.SampleServerSource, pair.R1)
	if err != nil {
		return res, fmt.Errorf("transform variant 1: %w", err)
	}
	res.Measured = r1.Counts
	res.InferredUIDVars = r1.InferredUIDVars
	res.TransformedSource = r1.Program.Emit()

	normal, err := runTransformedSample(pair, nil)
	if err != nil {
		return res, err
	}
	res.NormalClean = normal.Clean && normal.Status == 0

	corrupt, err := runTransformedSample(pair, map[string]word.Word{"worker_uid": 0})
	if err != nil {
		return res, err
	}
	res.CorruptionDetected = corrupt.Alarm != nil &&
		corrupt.Alarm.Reason == nvkernel.ReasonUIDDivergence
	return res, nil
}

func runTransformedSample(pair reexpress.Pair, corrupt map[string]word.Word) (*nvkernel.Result, error) {
	world, err := vos.NewWorld()
	if err != nil {
		return nil, err
	}
	if err := nvkernel.SetupUnsharedPasswd(world, pair.Funcs()); err != nil {
		return nil, err
	}
	compiled, err := transform.BuildVariants("unixd", transform.SampleServerSource, pair.Funcs(),
		minic.InterpOptions{CorruptOnAssign: corrupt})
	if err != nil {
		return nil, err
	}
	progs := []sys.Program{compiled[0].Program, compiled[1].Program}
	return nvkernel.Run(world, simnet.New(0), progs,
		nvkernel.WithUIDVariation(pair),
		nvkernel.WithUnsharedFiles("/etc/passwd", "/etc/group"),
	)
}

// Fprint renders the change-count comparison.
func (r ChangesResult) Fprint(w io.Writer) {
	fmt.Fprintln(w, "§4 transformation changes (automated transformer vs the paper's manual Apache count):")
	fmt.Fprintf(w, "  %-28s %10s %10s\n", "category", "this repo", "paper")
	fmt.Fprintf(w, "  %-28s %10d %10d\n", "UID constants reexpressed", r.Measured.Constants, r.Paper.Constants)
	fmt.Fprintf(w, "  %-28s %10d %10d\n", "uid_value insertions", r.Measured.UIDValues, r.Paper.UIDValues)
	fmt.Fprintf(w, "  %-28s %10d %10d\n", "UID comparisons → cc_*", r.Measured.Comparisons, r.Paper.Comparisons)
	fmt.Fprintf(w, "  %-28s %10d %10d\n", "cond_chk insertions", r.Measured.CondChks, r.Paper.CondChks)
	fmt.Fprintf(w, "  %-28s %10d %10s\n", "UID log scrubs", r.Measured.LogScrubs, "1 (§4)")
	fmt.Fprintf(w, "  %-28s %10d %10d\n", "total", r.Measured.Total(), r.Paper.Total())
	fmt.Fprintf(w, "  inferred uid_t variables: %v\n", r.InferredUIDVars)
	fmt.Fprintf(w, "  transformed system: normal equivalence clean = %v, corruption detected = %v\n",
		r.NormalClean, r.CorruptionDetected)
}
