// Package word provides the 32-bit machine word that diversified data
// values are stored in, together with byte-granular access.
//
// The paper's threat model (§3.2) distinguishes attacks by the
// granularity at which an attacker can corrupt memory: full-word
// overwrites, byte-level partial overwrites (the lowest granularity
// reported for remote attackers), and single-bit flips (known only for
// physical threat models such as the heat-lamp attack). All overwrite
// attacks in this repository are therefore expressed as operations on
// Word values so that the detection arguments can be tested at each
// granularity.
package word

import (
	"fmt"
	"strconv"
)

// Word is a 32-bit little-endian machine word. UID/GID values, memory
// addresses and instruction words are all carried as Words.
type Word uint32

const (
	// Bits is the width of a Word in bits.
	Bits = 32
	// Size is the width of a Word in bytes.
	Size = 4
	// HighBit is the sign/partition bit of a Word.
	HighBit Word = 0x80000000
	// Max is the largest representable Word.
	Max Word = 0xFFFFFFFF
)

// Byte returns byte i of the word, with byte 0 being the least
// significant ("low-order") byte, matching little-endian layout.
func (w Word) Byte(i int) (byte, error) {
	if i < 0 || i >= Size {
		return 0, fmt.Errorf("word: byte index %d out of range [0,%d)", i, Size)
	}
	return byte(w >> (8 * uint(i))), nil
}

// WithByte returns a copy of the word with byte i replaced by b. Byte 0
// is the least significant byte.
func (w Word) WithByte(i int, b byte) (Word, error) {
	if i < 0 || i >= Size {
		return w, fmt.Errorf("word: byte index %d out of range [0,%d)", i, Size)
	}
	shift := 8 * uint(i)
	mask := Word(0xFF) << shift
	return (w &^ mask) | Word(b)<<shift, nil
}

// WithBit returns a copy of the word with bit i (0 = least significant)
// set to the given value.
func (w Word) WithBit(i int, set bool) (Word, error) {
	if i < 0 || i >= Bits {
		return w, fmt.Errorf("word: bit index %d out of range [0,%d)", i, Bits)
	}
	mask := Word(1) << uint(i)
	if set {
		return w | mask, nil
	}
	return w &^ mask, nil
}

// Bit reports whether bit i (0 = least significant) is set.
func (w Word) Bit(i int) (bool, error) {
	if i < 0 || i >= Bits {
		return false, fmt.Errorf("word: bit index %d out of range [0,%d)", i, Bits)
	}
	return w&(Word(1)<<uint(i)) != 0, nil
}

// Bytes returns the word as 4 little-endian bytes.
func (w Word) Bytes() [Size]byte {
	return [Size]byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
}

// FromBytes assembles a word from 4 little-endian bytes.
func FromBytes(b [Size]byte) Word {
	return Word(b[0]) | Word(b[1])<<8 | Word(b[2])<<16 | Word(b[3])<<24
}

// String renders the word as 0xXXXXXXXX.
func (w Word) String() string {
	return "0x" + fmt.Sprintf("%08X", uint32(w))
}

// Decimal renders the word as an unsigned decimal string.
func (w Word) Decimal() string {
	return strconv.FormatUint(uint64(w), 10)
}

// SlotBits returns the number of top-of-word index bits needed to
// give n parties disjoint slots of the word space (minimum 1, the
// two-halves split). It is the single source of truth for slot
// widths: reexpress builds Slot functions and vmem builds address
// partitions from the same computation, so the monitor's
// canonicalization width can never drift from the slot layout a spec
// was property-checked against.
func SlotBits(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
