package word

import (
	"testing"
	"testing/quick"
)

func TestByte(t *testing.T) {
	w := Word(0xA1B2C3D4)
	tests := []struct {
		idx  int
		want byte
	}{
		{0, 0xD4},
		{1, 0xC3},
		{2, 0xB2},
		{3, 0xA1},
	}
	for _, tt := range tests {
		got, err := w.Byte(tt.idx)
		if err != nil {
			t.Fatalf("Byte(%d): unexpected error %v", tt.idx, err)
		}
		if got != tt.want {
			t.Errorf("Byte(%d) = %#02x, want %#02x", tt.idx, got, tt.want)
		}
	}
}

func TestByteOutOfRange(t *testing.T) {
	w := Word(0)
	for _, idx := range []int{-1, 4, 100} {
		if _, err := w.Byte(idx); err == nil {
			t.Errorf("Byte(%d): want error, got nil", idx)
		}
		if _, err := w.WithByte(idx, 0xFF); err == nil {
			t.Errorf("WithByte(%d): want error, got nil", idx)
		}
	}
}

func TestWithByte(t *testing.T) {
	w := Word(0x00000000)
	got, err := w.WithByte(2, 0xAB)
	if err != nil {
		t.Fatalf("WithByte: %v", err)
	}
	if got != 0x00AB0000 {
		t.Errorf("WithByte(2, 0xAB) = %s, want 0x00AB0000", got)
	}
}

func TestWithByteReplaces(t *testing.T) {
	w := Word(0xFFFFFFFF)
	got, err := w.WithByte(0, 0x00)
	if err != nil {
		t.Fatalf("WithByte: %v", err)
	}
	if got != 0xFFFFFF00 {
		t.Errorf("WithByte(0, 0x00) = %s, want 0xFFFFFF00", got)
	}
}

func TestBitRoundTrip(t *testing.T) {
	w := Word(0)
	w2, err := w.WithBit(31, true)
	if err != nil {
		t.Fatalf("WithBit: %v", err)
	}
	if w2 != HighBit {
		t.Errorf("WithBit(31, true) = %s, want %s", w2, HighBit)
	}
	set, err := w2.Bit(31)
	if err != nil {
		t.Fatalf("Bit: %v", err)
	}
	if !set {
		t.Error("Bit(31) = false, want true")
	}
	w3, err := w2.WithBit(31, false)
	if err != nil {
		t.Fatalf("WithBit: %v", err)
	}
	if w3 != 0 {
		t.Errorf("WithBit(31, false) = %s, want 0x00000000", w3)
	}
}

func TestBitOutOfRange(t *testing.T) {
	w := Word(0)
	for _, idx := range []int{-1, 32, 64} {
		if _, err := w.Bit(idx); err == nil {
			t.Errorf("Bit(%d): want error, got nil", idx)
		}
		if _, err := w.WithBit(idx, true); err == nil {
			t.Errorf("WithBit(%d): want error, got nil", idx)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	cases := []Word{0, 1, HighBit, Max, 0xA1B2C3D4, 0x00FF00FF}
	for _, w := range cases {
		if got := FromBytes(w.Bytes()); got != w {
			t.Errorf("FromBytes(Bytes(%s)) = %s", w, got)
		}
	}
}

func TestBytesLittleEndian(t *testing.T) {
	b := Word(0x11223344).Bytes()
	want := [Size]byte{0x44, 0x33, 0x22, 0x11}
	if b != want {
		t.Errorf("Bytes() = %v, want %v", b, want)
	}
}

func TestString(t *testing.T) {
	if got := Word(0xDEADBEEF).String(); got != "0xDEADBEEF" {
		t.Errorf("String() = %q, want 0xDEADBEEF", got)
	}
	if got := Word(5).Decimal(); got != "5" {
		t.Errorf("Decimal() = %q, want 5", got)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(x uint32) bool {
		w := Word(x)
		return FromBytes(w.Bytes()) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWithByteThenByte(t *testing.T) {
	f := func(x uint32, idx uint8, b byte) bool {
		w := Word(x)
		i := int(idx % Size)
		w2, err := w.WithByte(i, b)
		if err != nil {
			return false
		}
		got, err := w2.Byte(i)
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWithByteOnlyTouchesOneByte(t *testing.T) {
	f := func(x uint32, idx uint8, b byte) bool {
		w := Word(x)
		i := int(idx % Size)
		w2, err := w.WithByte(i, b)
		if err != nil {
			return false
		}
		for j := 0; j < Size; j++ {
			if j == i {
				continue
			}
			orig, _ := w.Byte(j)
			got, _ := w2.Byte(j)
			if orig != got {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
